package autonosql

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"autonosql/internal/baseline"
	"autonosql/internal/cluster"
	"autonosql/internal/core"
	"autonosql/internal/fault"
	"autonosql/internal/metrics"
	"autonosql/internal/monitor"
	"autonosql/internal/obs"
	"autonosql/internal/sim"
	"autonosql/internal/sla"
	"autonosql/internal/store"
	"autonosql/internal/tenant"
	"autonosql/internal/workload"
)

// Scenario is one fully assembled simulated system: cluster, store, workload,
// monitor, SLA tracking and (optionally) a controller. Build it with
// NewScenario, optionally register interventions with At, then call Run.
type Scenario struct {
	spec ScenarioSpec

	engine   *sim.Engine
	rnd      *sim.RandSource
	cluster  *cluster.Cluster
	store    *store.Store
	monitor  *monitor.Monitor
	gen      *workload.Generator
	tenant   *cluster.TenantDriver
	injector *fault.Injector

	// Multi-tenant mode: one runtime + generator per declared tenant; gen is
	// nil and the tenant generators carry all client traffic. tenantAct is
	// the scoped-action surface (admission + placement) the controller and
	// Handle execute tenant- and class-scoped actions through.
	tenantRuntimes []*tenant.Runtime
	tenantGens     []*workload.Generator
	tenantAct      *tenantActuator

	// Replay mode (spec.Replay != nil): trace sources take the generators'
	// place — source for the anonymous workload, tenantSources aligned with
	// tenantRuntimes — and issue the recorded arrivals at their exact times.
	source        *workload.TraceSource
	tenantSources []*workload.TraceSource

	// recorder, when armed via RecordTrace, captures the arrival stream of
	// whichever drivers (generators or trace sources) the scenario runs.
	recorder *workload.TraceRecorder

	agreement sla.SLA
	costs     sla.CostModel
	tracker   *sla.Tracker

	smart    *core.Controller
	reactive *baseline.ReactiveAutoscaler

	series      map[string]*metrics.TimeSeries
	sampler     *sim.Ticker
	lastControl time.Duration
	maxNodes    int
	minNodes    int

	hooks []hook
	ran   bool

	// sampleHook, when set via OnSample, observes every closed sampling
	// window; abortErr records the error that halted an aborted run.
	sampleHook func(SampleWindow) error
	abortErr   error

	// tracer is the op-trace sampler, non-nil only when Observe.TraceOps is
	// set. It lives on the home lane: store and tenant-runtime hooks all fire
	// there, so no locking guards it.
	tracer *obs.Tracer

	// Sharded mode (spec.Shards >= 2): the lockstep engine, the home lane
	// (whose Engine is s.engine) and one source lane per workload driver,
	// bridged back onto the home lane at Run. Nil in plain mode.
	sharded *shardedRun
	// feeds is the noise-feed set of a sharded run: the store's entropy
	// streams, pre-generated in batches on ring-segment owner lanes. Nil in
	// plain mode, where every draw stays inline.
	feeds *sim.FeedSet
}

type hook struct {
	at time.Duration
	fn func(*Handle)
}

// NewScenario validates the spec and assembles the simulated system.
func NewScenario(spec ScenarioSpec) (*Scenario, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.SampleInterval <= 0 {
		spec.SampleInterval = 10 * time.Second
	}
	if spec.Controller.ControlInterval <= 0 {
		spec.Controller.ControlInterval = 10 * time.Second
	}

	// Shards >= 2 swaps the single event heap for the lockstep sharded
	// engine; everything below schedules on the home lane's engine and
	// cannot tell the difference. Workload drivers get their own lanes via
	// driverEngine.
	var engine *sim.Engine
	var sharded *shardedRun
	if spec.Shards >= 2 {
		sr, err := newShardedRun(spec)
		if err != nil {
			return nil, err
		}
		sharded = sr
		engine = sr.home.Engine()
	} else {
		engine = sim.NewEngine()
	}
	rnd := sim.NewRandSource(spec.Seed)
	cl := cluster.New(spec.clusterConfig(), engine, rnd)

	storeCfg, err := spec.storeConfig()
	if err != nil {
		return nil, err
	}
	st, err := store.New(storeCfg, engine, cl, rnd)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling store: %w", err)
	}
	mon, err := monitor.New(spec.monitorConfig(), engine, st, cl)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling monitor: %w", err)
	}

	s := &Scenario{
		spec:      spec,
		engine:    engine,
		rnd:       rnd,
		cluster:   cl,
		store:     st,
		monitor:   mon,
		agreement: spec.slaModel(),
		costs:     spec.costModel(),
		tracker:   sla.NewTracker(spec.slaModel()),
		series:    make(map[string]*metrics.TimeSeries),
		maxNodes:  cl.Size(),
		minNodes:  cl.Size(),
		sharded:   sharded,
	}

	// Fault injection. The injector is assembled only when the plan is
	// non-empty, so fault-free scenarios carry no injection machinery at all.
	if !spec.Faults.Empty() {
		inj, err := fault.NewInjector(engine, cl, rnd.Stream("fault"), spec.Duration)
		if err != nil {
			return nil, fmt.Errorf("autonosql: assembling fault injector: %w", err)
		}
		s.injector = inj
	}

	// Background platform interference (noisy neighbours).
	if spec.Cluster.NoisyNeighbour {
		td, err := cluster.NewTenantDriver(engine, cl, cluster.NoisyTenantProfile(), rnd.Stream("tenant"))
		if err != nil {
			return nil, fmt.Errorf("autonosql: assembling tenant driver: %w", err)
		}
		s.tenant = td
	}

	// Client workload routed through the monitor so client-observed latency
	// and error rates are measured the way an application would measure them.
	// With declared tenants, each tenant gets its own generator, runtime and
	// disjoint key-space slice instead of the single anonymous workload.
	if len(spec.Tenants) == 0 {
		deng, err := s.driverEngine()
		if err != nil {
			return nil, err
		}
		if spec.Replay != nil {
			src, err := workload.NewTraceSource(deng, mon, spec.Replay.eventsFor(""))
			if err != nil {
				return nil, fmt.Errorf("autonosql: assembling replay: %w", err)
			}
			s.source = src
		} else {
			keys, err := s.keyChooser()
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewGenerator(workload.Config{
				Profile: spec.loadProfile(),
				Mix:     workload.Mix{ReadFraction: spec.Workload.ReadFraction},
				Keys:    keys,
				Until:   spec.Duration,
			}, deng, mon, rnd)
			if err != nil {
				return nil, fmt.Errorf("autonosql: assembling workload: %w", err)
			}
			s.gen = gen
		}
	} else if err := s.assembleTenants(); err != nil {
		return nil, err
	}

	// Controller. With declared tenants the actuator grows the scoped-action
	// surface (admission control and class placement) on top of the plain
	// cluster/store knobs; without them the controller sees exactly the
	// pre-tenant actuator.
	sysActuator, err := core.NewSystemActuator(st, cl)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling actuator: %w", err)
	}
	var actuator core.Actuator = sysActuator
	if len(spec.Tenants) > 0 {
		s.tenantAct = &tenantActuator{SystemActuator: sysActuator, scenario: s}
		actuator = s.tenantAct
	}
	switch spec.Controller.Mode {
	case ControllerSmart:
		ctl, err := core.New(spec.controllerConfig(), actuator)
		if err != nil {
			return nil, fmt.Errorf("autonosql: assembling controller: %w", err)
		}
		s.smart = ctl
	case ControllerReactive:
		ra, err := baseline.NewReactiveAutoscaler(spec.reactiveConfig(), actuator)
		if err != nil {
			return nil, fmt.Errorf("autonosql: assembling reactive autoscaler: %w", err)
		}
		s.reactive = ra
	case ControllerNone, "":
		// Static configuration: nothing to assemble.
	}

	// Observability. The tracer fronts admission in the tenant runtimes (so a
	// shed or delayed op still gets its span) and falls through to the store
	// for anonymous traffic; the audit trail rides on the smart controller.
	// All hooks fire on the home lane, so spans and audit records come out
	// identical for every shard count.
	if ob := spec.Observe; ob != nil {
		if ob.TraceOps {
			s.tracer = obs.NewTracer(ob.SampleEvery, ob.MaxTraces)
			st.SetTracer(s.tracer)
			for _, rt := range s.tenantRuntimes {
				if err := rt.SetTracer(s.tracer, engine.Now); err != nil {
					return nil, fmt.Errorf("autonosql: arming tracer: %w", err)
				}
			}
		}
		if ob.Audit && s.smart != nil {
			s.smart.EnableAudit()
		}
	}

	for _, name := range []string{
		SeriesWindowP95, SeriesWindowEstimateP95, SeriesOfferedLoad, SeriesClusterSize,
		SeriesUtilization, SeriesWriteConsistency, SeriesReplicationFactor, SeriesStaleReads,
		SeriesReadLatencyP99, SeriesWriteLatencyP99,
	} {
		s.series[name] = metrics.NewTimeSeries(name)
	}
	// Each tenant gets its own ground-truth metrics stream alongside the
	// aggregate series.
	for _, ts := range spec.Tenants {
		for _, base := range []string{SeriesWindowP95, SeriesOfferedLoad, SeriesReadLatencyP99} {
			name := tenantSeriesName(ts.Name, base)
			s.series[name] = metrics.NewTimeSeries(name)
		}
	}

	// Home-side sharding. With every driver on its own lane, the home lane's
	// remaining entropy work — the store's service-time and network-jitter
	// log-normal draws — moves onto the driver lanes too: each simulated
	// node's draw stream is owned by the lane its ring segment maps to
	// (store.OwnerSegment, a pure function of the node's ring token, so
	// ownership survives scale-out/in and crash/restart), and the owner
	// pre-generates noise factors in batches at its window starts. The home
	// lane consumes the factors FIFO at the exact call sites, so the values —
	// and therefore every golden fingerprint — are bit-identical to plain
	// mode; only the goroutine that runs the generator changes. Nodes the
	// controller provisions mid-run get feeds from the same factory.
	if sharded != nil && len(sharded.driverLanes) > 0 {
		owners := sharded.driverLanes
		fs := sim.NewFeedSet(0)
		fs.Attach(sharded.se)
		cl.EnableNoiseFeeds(func(node cluster.NodeID, rng *rand.Rand, sigma float64) *sim.NoiseFeed {
			return fs.NewFeed(owners[store.OwnerSegment(node, len(owners))], rng, sigma)
		})
		s.feeds = fs
	}
	return s, nil
}

// Names of the time series a Report carries.
const (
	// SeriesWindowP95 is the ground-truth 95th-percentile inconsistency
	// window over recent writes, in milliseconds.
	SeriesWindowP95 = "window_p95_ms"
	// SeriesWindowEstimateP95 is the monitor's estimate of the same quantity.
	SeriesWindowEstimateP95 = "window_estimate_p95_ms"
	// SeriesOfferedLoad is the observed client operation rate in ops/s.
	SeriesOfferedLoad = "offered_ops_per_sec"
	// SeriesClusterSize is the number of serving nodes.
	SeriesClusterSize = "cluster_size"
	// SeriesUtilization is the mean node utilisation in [0, 1].
	SeriesUtilization = "mean_utilization"
	// SeriesWriteConsistency is the numeric write consistency level
	// (1=ONE, 2=TWO, 3=QUORUM, 4=ALL).
	SeriesWriteConsistency = "write_consistency_level"
	// SeriesReplicationFactor is the replication factor.
	SeriesReplicationFactor = "replication_factor"
	// SeriesStaleReads is the cumulative number of stale reads served.
	SeriesStaleReads = "stale_reads_total"
	// SeriesReadLatencyP99 is the client-observed read latency p99 in
	// milliseconds over recent operations.
	SeriesReadLatencyP99 = "read_latency_p99_ms"
	// SeriesWriteLatencyP99 is the client-observed write latency p99 in
	// milliseconds over recent operations.
	SeriesWriteLatencyP99 = "write_latency_p99_ms"
)

func (s *Scenario) keyChooser() (workload.KeyChooser, error) {
	return s.keyChooserFor(s.spec.Workload.Keys, s.spec.Workload.Keyspace, "keys")
}

// keyChooserFor builds a key chooser over its own random stream. Callers
// that need a confined window of the key namespace (tenants) apply
// workload.Slice on the result.
func (s *Scenario) keyChooserFor(dist KeyDistribution, keyspace int, stream string) (workload.KeyChooser, error) {
	rng := s.rnd.Stream(stream)
	n := keyspace
	if n <= 0 {
		n = 10000
	}
	switch dist {
	case KeysUniform:
		return workload.NewUniformKeys(n, rng), nil
	case KeysLatest:
		return workload.NewLatestKeys(n, rng), nil
	case KeysZipfian, "":
		return workload.NewZipfianKeys(n, 1.3, rng), nil
	default:
		return nil, fmt.Errorf("autonosql: unknown key distribution %q", dist)
	}
}

// tenantKeyspace returns the key count of one tenant's slice.
func tenantKeyspace(t TenantSpec) int {
	if t.Workload.Keyspace > 0 {
		return t.Workload.Keyspace
	}
	return 10000
}

// assembleTenants builds one runtime and one generator per declared tenant.
// Tenant i (1-indexed as its store tag) drives the key range
// [offset, offset+keyspace) where offset is the sum of the preceding
// tenants' keyspaces, so tenants never collide on keys; its operations are
// tagged through the monitor so the aggregate client view still covers all
// traffic while the store attributes ground truth per tenant.
func (s *Scenario) assembleTenants() error {
	specs := s.spec.Tenants
	s.store.RegisterTenants(len(specs))
	if s.spec.Controller.AllowPlacement {
		// Record key ownership from the first write, so a pin-class action
		// can repair every key onto its tenant's biased replica set;
		// scenarios that never allow placement skip the per-write recording.
		s.store.EnablePlacementTracking()
	}
	s.tenantRuntimes = make([]*tenant.Runtime, 0, len(specs))
	s.tenantGens = make([]*workload.Generator, 0, len(specs))
	base := 0
	for i, ts := range specs {
		id := store.TenantID(i + 1)
		class, err := ts.Class.toInternal()
		if err != nil {
			return fmt.Errorf("autonosql: tenant %q: %w", ts.Name, err)
		}
		rt, err := tenant.NewRuntime(id, ts.Name, class, s.monitor.Tagged(id))
		if err != nil {
			return fmt.Errorf("autonosql: tenant %q: %w", ts.Name, err)
		}
		// Admission plumbing is always installed (the limiter starts
		// disabled and admits everything): throttle actions — from the
		// controller or a Handle intervention — can then engage it mid-run,
		// and every shed is counted as a rejection in the tenant's store
		// ground truth.
		if err := rt.EnableAdmission(s.engine.Now, func(write bool) {
			s.store.TenantShed(id, write)
		}); err != nil {
			return fmt.Errorf("autonosql: tenant %q: %w", ts.Name, err)
		}
		if s.spec.Controller.Admission.Mode == AdmissionDelay {
			// Delay mode queues a throttled tenant's excess arrivals on the
			// event loop instead of shedding them.
			if err := rt.EnableDelayMode(func(d time.Duration, fn func()) {
				s.engine.After(d, func(time.Duration) { fn() })
			}); err != nil {
				return fmt.Errorf("autonosql: tenant %q: %w", ts.Name, err)
			}
		}
		s.tenantRuntimes = append(s.tenantRuntimes, rt)
		deng, err := s.driverEngine()
		if err != nil {
			return err
		}
		if s.spec.Replay != nil {
			// Replay: the tenant's recorded arrivals drive the runtime
			// directly; key choosers and arrival streams stay unbuilt (the
			// trace already carries the keys).
			src, err := workload.NewTraceSource(deng, rt, s.spec.Replay.eventsFor(ts.Name))
			if err != nil {
				return fmt.Errorf("autonosql: tenant %q replay: %w", ts.Name, err)
			}
			s.tenantSources = append(s.tenantSources, src)
			continue
		}
		keys, err := s.keyChooserFor(ts.Workload.Keys, ts.Workload.Keyspace,
			"tenant-"+ts.Name+"-keys")
		if err != nil {
			return fmt.Errorf("autonosql: tenant %q: %w", ts.Name, err)
		}
		// Confine the chooser to the tenant's window even at base 0: the
		// "latest" distribution appends without bound and would otherwise
		// grow into the next tenant's slice.
		workload.Slice(keys, base, tenantKeyspace(ts))
		base += tenantKeyspace(ts)
		gen, err := workload.NewGenerator(workload.Config{
			Profile:       loadProfileFor(ts.Workload, s.spec.Duration),
			Mix:           workload.Mix{ReadFraction: ts.Workload.ReadFraction},
			Keys:          keys,
			Until:         s.spec.Duration,
			ArrivalStream: "tenant-" + ts.Name + "-arrivals",
		}, deng, rt, s.rnd)
		if err != nil {
			return fmt.Errorf("autonosql: tenant %q workload: %w", ts.Name, err)
		}
		s.tenantGens = append(s.tenantGens, gen)
	}
	return nil
}

// Spec returns the spec the scenario was built from.
func (s *Scenario) Spec() ScenarioSpec { return s.spec }

// RecordTrace arms arrival recording on a scenario that has not run yet:
// every workload driver's target is wrapped with a pass-through recorder, so
// the run captures its complete arrival stream without perturbing it (the
// recorder draws no randomness and schedules no events). Retrieve the trace
// with RecordedTrace after Run. Replayed scenarios can be recorded too; the
// re-recorded trace equals the one being replayed.
func (s *Scenario) RecordTrace() error {
	if s.ran {
		return errors.New("autonosql: cannot record a scenario that has already run")
	}
	if s.recorder != nil {
		return errors.New("autonosql: trace recording is already armed")
	}
	names := make([]string, len(s.spec.Tenants))
	for i, ts := range s.spec.Tenants {
		names[i] = ts.Name
	}
	rec, err := workload.NewTraceRecorder(s.engine.Now, names)
	if err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	wrap := func(name string) func(workload.Target) workload.Target {
		return func(inner workload.Target) workload.Target { return rec.Wrap(name, inner) }
	}
	if s.gen != nil {
		s.gen.Intercept(wrap(""))
	}
	if s.source != nil {
		s.source.Intercept(wrap(""))
	}
	for i, g := range s.tenantGens {
		g.Intercept(wrap(s.spec.Tenants[i].Name))
	}
	for i, src := range s.tenantSources {
		src.Intercept(wrap(s.spec.Tenants[i].Name))
	}
	s.recorder = rec
	return nil
}

// RecordedTrace returns the arrival stream captured by a run that was armed
// with RecordTrace before Run.
func (s *Scenario) RecordedTrace() (*WorkloadTrace, error) {
	if s.recorder == nil {
		return nil, errors.New("autonosql: RecordTrace was not called before the run")
	}
	if !s.ran {
		return nil, errors.New("autonosql: the scenario has not run yet")
	}
	return &WorkloadTrace{trace: s.recorder.Trace()}, nil
}

// WriteSpans writes the retained op traces as JSON lines, one span tree per
// sampled operation, in sampling order. Virtual timestamps and counter ids
// only: the bytes are identical for every shard count and every rerun of the
// same spec. It errors unless the scenario was built with Observe.TraceOps.
func (s *Scenario) WriteSpans(w io.Writer) error {
	if s.tracer == nil {
		return errors.New("autonosql: op tracing is not enabled (set Observe.TraceOps)")
	}
	if err := obs.WriteJSONL(w, s.tracer.Traces()); err != nil {
		return fmt.Errorf("autonosql: writing spans: %w", err)
	}
	return nil
}

// WriteChromeTrace writes the retained op traces in Chrome trace_event JSON
// (load it in chrome://tracing or Perfetto). Deterministic like WriteSpans.
func (s *Scenario) WriteChromeTrace(w io.Writer) error {
	if s.tracer == nil {
		return errors.New("autonosql: op tracing is not enabled (set Observe.TraceOps)")
	}
	if err := obs.WriteChromeTrace(w, s.tracer.Traces()); err != nil {
		return fmt.Errorf("autonosql: writing chrome trace: %w", err)
	}
	return nil
}

// OnSpan registers fn to observe every op trace as it finishes (op completed,
// failed or shed). It powers streaming surfaces: fn runs on the simulation
// goroutine and must not retain the trace beyond the call without copying.
// Register before Run; it is a no-op unless Observe.TraceOps is set.
func (s *Scenario) OnSpan(fn func(*obs.OpTrace)) {
	if s.tracer != nil {
		s.tracer.SetSink(fn)
	}
}

// SampleWindow is one closed sampling window of a running scenario: the
// virtual time the sampler fired at and the value every time series recorded
// for that window, keyed by series name (the Series* constants, plus
// tenant/<name>/<series> streams for multi-tenant runs).
type SampleWindow struct {
	// At is the virtual time of the sample.
	At time.Duration
	// Values maps each series name to the value sampled for this window.
	Values map[string]float64
}

// OnSample registers fn to observe every sampling window as it closes, after
// the window's SLA accounting and control step have run. It powers streaming
// surfaces (the nosqlsimd daemon) without touching the simulation: fn runs on
// the simulation goroutine and must treat the scenario as read-only; blocking
// inside it freezes virtual time (which is how the daemon implements pause).
// Returning a non-nil error halts the run — Run then returns that error — so
// an observer can also cancel. Register before Run; a nil fn clears the hook.
func (s *Scenario) OnSample(fn func(SampleWindow) error) {
	s.sampleHook = fn
}

// abort records the first abort reason and halts the engines so Run unwinds
// at the next event (plain mode) or epoch barrier (sharded mode).
func (s *Scenario) abort(err error) {
	if s.abortErr == nil {
		s.abortErr = err
	}
	s.engine.Halt()
	if s.sharded != nil {
		s.sharded.se.Halt()
	}
}

// At registers an intervention to run at the given virtual time during Run.
// The callback receives a Handle bound to the live system. Interventions
// registered after Run has been called are ignored.
func (s *Scenario) At(at time.Duration, fn func(*Handle)) {
	if fn == nil || at < 0 {
		return
	}
	s.hooks = append(s.hooks, hook{at: at, fn: fn})
}

// Run executes the scenario for its configured duration and returns the
// report. A scenario can only be run once.
func (s *Scenario) Run() (*Report, error) {
	if s.ran {
		return nil, errors.New("autonosql: scenario has already been run")
	}
	s.ran = true

	// Periodic sampling + SLA accounting + control.
	sampler, err := sim.NewTicker(s.engine, s.spec.SampleInterval, s.onSample)
	if err != nil {
		return nil, fmt.Errorf("autonosql: starting sampler: %w", err)
	}
	s.sampler = sampler

	// Interventions.
	handle := &Handle{scenario: s}
	for _, h := range s.hooks {
		h := h
		if _, err := s.engine.ScheduleAt(h.at, func(time.Duration) { h.fn(handle) }); err != nil {
			return nil, fmt.Errorf("autonosql: scheduling intervention at %v: %w", h.at, err)
		}
	}

	// Planned fault events.
	if s.injector != nil {
		if err := s.injector.Schedule(s.spec.Faults.toInternal()); err != nil {
			return nil, fmt.Errorf("autonosql: scheduling faults: %w", err)
		}
	}

	// Sharded mode: bridge each workload driver onto its source lane. This
	// must come after any RecordTrace wrap (the recorder belongs on the home
	// side of the bridge) and before the drivers start.
	if s.sharded != nil {
		if err := s.sharded.splice(s); err != nil {
			return nil, err
		}
	}

	if s.gen != nil {
		s.gen.Start()
	}
	if s.source != nil {
		s.source.Start()
	}
	for _, g := range s.tenantGens {
		g.Start()
	}
	for _, src := range s.tenantSources {
		src.Start()
	}
	// Sharded mode: claim each driver's first-arrival sequence number on the
	// home engine, in driver order — the same consecutive positions the
	// Starts above would have allocated on a single engine.
	if s.sharded != nil {
		for _, b := range s.sharded.bridges {
			b.seed()
		}
	}
	var runErr error
	if s.sharded != nil {
		runErr = s.sharded.se.Run(s.spec.Duration)
	} else {
		runErr = s.engine.Run(s.spec.Duration)
	}
	if s.abortErr != nil {
		return nil, fmt.Errorf("autonosql: run aborted: %w", s.abortErr)
	}
	if runErr != nil {
		return nil, fmt.Errorf("autonosql: running simulation: %w", runErr)
	}
	if s.gen != nil {
		s.gen.Stop()
	}
	if s.source != nil {
		s.source.Stop()
	}
	for _, g := range s.tenantGens {
		g.Stop()
	}
	for _, src := range s.tenantSources {
		src.Stop()
	}
	s.sampler.Stop()
	if s.tenant != nil {
		s.tenant.Stop()
	}
	if s.smart != nil {
		s.smart.Stop()
	}
	if s.reactive != nil {
		s.reactive.Stop()
	}
	return s.buildReport(), nil
}

// onSample is the per-interval bookkeeping: one monitoring snapshot feeds SLA
// accounting, the time series and (when due) the controller.
func (s *Scenario) onSample(now time.Duration) {
	snap := s.monitor.Snapshot()

	// Ground truth for evaluation: the true window over recent writes and the
	// store's cumulative stale-read count.
	trueWindowP95 := s.store.RecentWindowQuantile(0.95)
	stats := s.store.Stats()

	s.tracker.Observe(sla.Observation{
		At:              now,
		Interval:        snap.Interval,
		WindowP95:       trueWindowP95,
		ReadLatencyP99:  snap.ReadLatencyP99,
		WriteLatencyP99: snap.WriteLatencyP99,
		ErrorRate:       snap.ErrorRate,
	})

	s.series[SeriesWindowP95].Append(now, trueWindowP95*1000)
	s.series[SeriesWindowEstimateP95].Append(now, snap.WindowP95*1000)
	s.series[SeriesOfferedLoad].Append(now, snap.ObservedOpsPerSec)
	s.series[SeriesClusterSize].Append(now, float64(snap.ClusterSize))
	s.series[SeriesUtilization].Append(now, snap.MeanUtilization)
	s.series[SeriesWriteConsistency].Append(now, float64(snap.WriteConsistency))
	s.series[SeriesReplicationFactor].Append(now, float64(snap.ReplicationFactor))
	s.series[SeriesStaleReads].Append(now, float64(stats.StaleReads))
	s.series[SeriesReadLatencyP99].Append(now, snap.ReadLatencyP99*1000)
	s.series[SeriesWriteLatencyP99].Append(now, snap.WriteLatencyP99*1000)

	if snap.ClusterSize > s.maxNodes {
		s.maxNodes = snap.ClusterSize
	}
	if snap.ClusterSize < s.minNodes && snap.ClusterSize > 0 {
		s.minNodes = snap.ClusterSize
	}

	// Per-tenant bookkeeping: each tenant's ground-truth window feeds its own
	// SLA tracker and metrics stream, and the resulting signals ride on the
	// snapshot so the tenant-aware controller can act on the worst
	// penalty-weighted tenant instead of the aggregate.
	if len(s.tenantRuntimes) > 0 {
		// A fresh slice per sample: the snapshot (and through it the signal
		// slice) is retained inside controller decisions, so reusing one
		// backing array would retroactively rewrite the decision log.
		sigs := make([]tenant.Signal, len(s.tenantRuntimes))
		for i, rt := range s.tenantRuntimes {
			trueWindow := s.store.TenantRecentWindowQuantile(rt.ID(), 0.95)
			sig := rt.Observe(now, snap.Interval, trueWindow)
			sigs[i] = sig
			s.series[tenantSeriesName(rt.Name(), SeriesWindowP95)].Append(now, trueWindow*1000)
			s.series[tenantSeriesName(rt.Name(), SeriesOfferedLoad)].Append(now, sig.OfferedOpsPerSec)
			s.series[tenantSeriesName(rt.Name(), SeriesReadLatencyP99)].Append(now, sig.ReadLatencyP99*1000)
		}
		snap.Tenants = sigs
	}

	// Drive the configured controller at its own interval.
	if now-s.lastControl >= s.spec.Controller.ControlInterval || s.lastControl == 0 {
		s.lastControl = now
		switch {
		case s.smart != nil:
			s.smart.Step(snap)
		case s.reactive != nil:
			s.reactive.Step(snap)
		}
	}

	// Hand the closed window to the registered observer last, once the
	// window's bookkeeping and control are done. The map is built per window
	// only when a hook is installed, so unobserved runs pay nothing.
	if s.sampleHook != nil {
		w := SampleWindow{At: now, Values: make(map[string]float64, len(s.series))}
		for name, ts := range s.series {
			if p, ok := ts.Last(); ok {
				w.Values[name] = p.Value
			}
		}
		if err := s.sampleHook(w); err != nil {
			s.abort(err)
		}
	}
}
