package autonosql_test

// The benchmark harness regenerates the experiment suite derived from the
// paper (see ARCHITECTURE.md for the system layout and EXPERIMENTS.md for
// the experiment-to-research-question mapping): one benchmark per
// experiment, E1–E5, plus a micro-benchmark of the simulation itself.
// Benchmarks run the quick-scale sweep so `go test -bench=.` finishes in
// minutes; the full sweep used for EXPERIMENTS.md is produced by
// `go run ./cmd/benchrunner -exp all`. Performance benchmarks and the
// recorded BENCH_*.json trajectory are described in PERFORMANCE.md.
//
// Each benchmark reports domain metrics (window percentiles, violation
// minutes, cost) through b.ReportMetric, so -benchmem output doubles as a
// compact summary of the reproduced results.

import (
	"testing"
	"time"

	"autonosql"
	"autonosql/internal/experiment"
)

// runExperiment executes one experiment per benchmark iteration and fails the
// benchmark if the experiment errors.
func runExperiment(b *testing.B, run func(experiment.Scale) (*experiment.Result, error)) *experiment.Result {
	b.Helper()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := run(experiment.ScaleQuick)
		if err != nil {
			b.Fatalf("experiment failed: %v", err)
		}
		last = res
	}
	return last
}

// BenchmarkE1WindowParameterStudy regenerates E1: how the inconsistency
// window depends on load, replication factor, consistency level and platform
// interference.
func BenchmarkE1WindowParameterStudy(b *testing.B) {
	res := runExperiment(b, experiment.RunE1)
	b.ReportMetric(float64(len(res.Tables)), "tables")
}

// BenchmarkE2MonitoringOverhead regenerates E2: estimation error and overhead
// of the window-monitoring techniques (RQ1).
func BenchmarkE2MonitoringOverhead(b *testing.B) {
	res := runExperiment(b, experiment.RunE2)
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "techniques")
}

// BenchmarkE3SLADerivedConfig regenerates E3: deriving the configuration from
// the SLA and comparing it with the offline optimum (RQ2).
func BenchmarkE3SLADerivedConfig(b *testing.B) {
	res := runExperiment(b, experiment.RunE3)
	b.ReportMetric(float64(len(res.Tables[1].Rows)), "sla_limits")
}

// BenchmarkE4ReconfigurationActions regenerates E4: transient impact and
// convergence of individual reconfiguration actions, including the
// wrong-action-under-congestion case (RQ3).
func BenchmarkE4ReconfigurationActions(b *testing.B) {
	res := runExperiment(b, experiment.RunE4)
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "action_cases")
}

// BenchmarkE5EndToEnd regenerates E5: smart SLA-driven auto-scaling against
// the static and reactive baselines over a diurnal + flash-crowd day.
func BenchmarkE5EndToEnd(b *testing.B) {
	res := runExperiment(b, experiment.RunE5)
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "policies")
}

// BenchmarkScenarioThroughput measures the raw simulation speed of the public
// API: simulated client operations processed per wall-clock second for a
// plain three-node cluster without a controller.
func BenchmarkScenarioThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = int64(i + 1)
		spec.Duration = 30 * time.Second
		spec.Workload.BaseOpsPerSec = 2000
		spec.Controller.Mode = autonosql.ControllerNone
		scenario, err := autonosql.NewScenario(spec)
		if err != nil {
			b.Fatalf("NewScenario: %v", err)
		}
		rep, err := scenario.Run()
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		b.ReportMetric(float64(rep.Reads+rep.Writes), "simulated_ops/op")
	}
}

// BenchmarkSmartControllerOverhead measures the wall-clock cost of running
// the full MAPE-K loop (monitoring, analysis, planning, actuation) relative
// to the same scenario without a controller — the "computing power required
// to process and analyse these consistency measurements" the paper's RQ1
// asks about.
func BenchmarkSmartControllerOverhead(b *testing.B) {
	run := func(mode autonosql.ControllerMode, seed int64) {
		spec := autonosql.DefaultScenarioSpec()
		spec.Seed = seed
		spec.Duration = 30 * time.Second
		spec.Workload.BaseOpsPerSec = 2000
		spec.Controller.Mode = mode
		scenario, err := autonosql.NewScenario(spec)
		if err != nil {
			b.Fatalf("NewScenario: %v", err)
		}
		if _, err := scenario.Run(); err != nil {
			b.Fatalf("Run: %v", err)
		}
	}
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(autonosql.ControllerNone, int64(i+1))
		}
	})
	b.Run("smart", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(autonosql.ControllerSmart, int64(i+1))
		}
	})
}
