package autonosql

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"autonosql/internal/text"
)

// SuiteAggregatorOptions configures a SuiteAggregator's streamed outputs.
// Every field is optional; a zero options value aggregates tables and the
// cheapest-compliant winner only.
type SuiteAggregatorOptions struct {
	// CSV, when non-nil, receives the per-variant CSV export incrementally:
	// SuiteCSVHeader first, then one record per completed variant as it is
	// added. The bytes are identical to SuiteReport.WriteCSV on the same run.
	CSV io.Writer
	// TenantsCSV, when non-nil, receives the per-tenant CSV export
	// incrementally, identical to SuiteReport.WriteTenantsCSV.
	TenantsCSV io.Writer
	// JSON, when non-nil, receives the full suite report — specs, reports
	// and series — incrementally, one variant at a time. After Close the
	// bytes are identical to SuiteReport.WriteJSON on the same run, so
	// ReadSuiteReportJSON reads them back.
	JSON io.Writer
	// SpillDir, when non-empty, writes each variant's complete result (spec,
	// report and series) to its own indented JSON file in that directory,
	// named <index>_<sanitized-variant-name>.report.json — the durable
	// per-variant record for grids too large to hold a SuiteReport of.
	SpillDir string
	// MaxViolationMinutes is the compliance threshold for the incremental
	// CheapestCompliant tracking (same meaning as the SuiteReport method's
	// argument). Zero demands full compliance.
	MaxViolationMinutes float64
}

// SuiteAggregator consumes VariantResults one at a time — typically from
// Suite.RunStream — and maintains everything a SuiteReport offers without
// retaining the reports: comparison/cost/fault/tenant table rows, the
// cheapest compliant variant, and incremental CSV/JSON emission. Memory grows
// with the table rows (a few short strings per variant), not with the full
// reports and their time series; at most one report (the current
// cheapest-compliant winner) is retained. Results must be added in variant
// order, which RunStream guarantees; the aggregator is not safe for
// concurrent use (RunStream delivers on a single goroutine).
//
// Call Close after the last Add to finish the JSON document and flush the
// CSV writers. The streamed CSV/JSON bytes are then identical to the
// in-memory SuiteReport export of the same run.
type SuiteAggregator struct {
	opts SuiteAggregatorOptions

	added    int
	failures []error

	compRows   [][]string
	costRows   [][]string
	faultRows  [][]string
	tenantRows [][]string

	cheapest    *VariantResult
	cheapestIdx int

	csvW                 *csv.Writer
	csvHeaderDone        bool
	tenantsCSVW          *csv.Writer
	tenantsCSVHeaderDone bool
	jsonStarted          bool
	spillReady           bool
	closed               bool
	err                  error
}

// NewSuiteAggregator creates an aggregator with the given streamed outputs.
func NewSuiteAggregator(opts SuiteAggregatorOptions) *SuiteAggregator {
	a := &SuiteAggregator{opts: opts}
	if opts.CSV != nil {
		a.csvW = csv.NewWriter(opts.CSV)
	}
	if opts.TenantsCSV != nil {
		a.tenantsCSVW = csv.NewWriter(opts.TenantsCSV)
	}
	return a
}

// Consume returns Add as a Suite.RunStream consumer:
//
//	meta, err := suite.RunStream(agg.Consume())
func (a *SuiteAggregator) Consume() func(VariantResult) error {
	return a.Add
}

// Add folds one variant result into the aggregate. Failed variants (Err set,
// nil report) are recorded in Failures and contribute to the JSON stream —
// whose bytes must match the in-memory partial report — but to no table or
// CSV row, exactly as SuiteReport's renderers skip them.
func (a *SuiteAggregator) Add(v VariantResult) error {
	if a.err != nil {
		return a.err
	}
	if a.closed {
		return a.fail(errors.New("autonosql: SuiteAggregator: Add after Close"))
	}
	idx := a.added
	a.added++

	if err := a.emitJSON(&v); err != nil {
		return a.fail(err)
	}
	if v.Report == nil {
		err := v.Err
		if err == nil {
			err = fmt.Errorf("autonosql: suite variant %q: no report", v.Name)
		}
		a.failures = append(a.failures, err)
		return nil
	}

	a.compRows = append(a.compRows, comparisonRow(v.Name, v.Report))
	a.costRows = append(a.costRows, costRow(v.Name, v.Report))
	a.faultRows = append(a.faultRows, faultRowsFor(v.Name, v.Report)...)
	a.tenantRows = append(a.tenantRows, tenantRowsFor(v.Name, v.Report)...)

	// Same comparison and tie-break as SuiteReport.CheapestCompliant:
	// strictly cheaper wins, ties keep the earlier variant.
	if v.Report.Violations.Total <= a.opts.MaxViolationMinutes {
		if a.cheapest == nil || v.Report.Cost.Total < a.cheapest.Report.Cost.Total {
			held := v
			a.cheapest = &held
			a.cheapestIdx = idx
		}
	}

	if a.csvW != nil {
		if err := a.writeCSVRow(&v); err != nil {
			return a.fail(err)
		}
	}
	if a.tenantsCSVW != nil {
		if err := a.writeTenantRows(&v); err != nil {
			return a.fail(err)
		}
	}
	if a.opts.SpillDir != "" {
		if err := a.spill(idx, &v); err != nil {
			return a.fail(err)
		}
	}
	return nil
}

// Close finishes the streamed outputs: the JSON document's closing brackets
// and the CSV flushes (including bare headers when no variant completed). It
// is idempotent; Add after Close is an error.
func (a *SuiteAggregator) Close() error {
	if a.closed || a.err != nil {
		return a.err
	}
	a.closed = true
	if a.opts.JSON != nil {
		if !a.jsonStarted {
			if _, err := io.WriteString(a.opts.JSON, "{\n  \"Variants\": []\n}\n"); err != nil {
				return a.fail(fmt.Errorf("autonosql: encoding suite report: %w", err))
			}
		} else if _, err := io.WriteString(a.opts.JSON, "\n  ]\n}\n"); err != nil {
			return a.fail(fmt.Errorf("autonosql: encoding suite report: %w", err))
		}
	}
	if a.csvW != nil {
		if err := a.ensureCSVHeader(); err != nil {
			return a.fail(err)
		}
		a.csvW.Flush()
		if err := a.csvW.Error(); err != nil {
			return a.fail(fmt.Errorf("autonosql: writing suite CSV: %w", err))
		}
	}
	if a.tenantsCSVW != nil {
		if err := a.ensureTenantsCSVHeader(); err != nil {
			return a.fail(err)
		}
		a.tenantsCSVW.Flush()
		if err := a.tenantsCSVW.Error(); err != nil {
			return a.fail(fmt.Errorf("autonosql: writing tenant CSV: %w", err))
		}
	}
	return nil
}

// Added returns the number of results consumed so far (completed + failed).
func (a *SuiteAggregator) Added() int { return a.added }

// Failures returns the errors of the failed variants added so far, in
// variant order.
func (a *SuiteAggregator) Failures() []error {
	out := make([]error, len(a.failures))
	copy(out, a.failures)
	return out
}

// CheapestCompliant returns the variant with the lowest total cost among
// those whose violation minutes did not exceed the configured threshold, or
// nil when none qualifies — the same answer SuiteReport.CheapestCompliant
// gives for the same run and threshold. The winner is the only full report
// the aggregator retains.
func (a *SuiteAggregator) CheapestCompliant() *VariantResult { return a.cheapest }

// ComparisonTable renders the SLA-facing comparison over the variants added
// so far, byte-identical to SuiteReport.ComparisonTable on the same run.
func (a *SuiteAggregator) ComparisonTable() string {
	return text.FormatAligned(suiteComparisonTitle, suiteComparisonColumns, a.compRows, nil)
}

// CostTable renders the cost comparison over the variants added so far.
func (a *SuiteAggregator) CostTable() string {
	return text.FormatAligned(suiteCostTitle, suiteCostColumns, a.costRows, nil)
}

// FaultsTable renders the fault timeline over the variants added so far
// (empty when none injected faults).
func (a *SuiteAggregator) FaultsTable() string {
	if len(a.faultRows) == 0 {
		return ""
	}
	return text.FormatAligned(suiteFaultsTitle, suiteFaultsColumns, a.faultRows, nil)
}

// TenantsTable renders the per-tenant comparison over the variants added so
// far (empty when none declared tenants).
func (a *SuiteAggregator) TenantsTable() string {
	if len(a.tenantRows) == 0 {
		return ""
	}
	return text.FormatAligned(suiteTenantsTitle, suiteTenantsColumns, a.tenantRows, nil)
}

// String renders the comparison and cost tables, plus the fault and tenant
// tables when populated — the same composition as SuiteReport.String.
func (a *SuiteAggregator) String() string {
	s := a.ComparisonTable() + "\n" + a.CostTable()
	if ft := a.FaultsTable(); ft != "" {
		s += "\n" + ft
	}
	if tt := a.TenantsTable(); tt != "" {
		s += "\n" + tt
	}
	return s
}

// fail records the first sink error; every later Add/Close returns it.
func (a *SuiteAggregator) fail(err error) error {
	if a.err == nil {
		a.err = err
	}
	return a.err
}

// emitJSON streams one variant into the JSON document. The byte layout —
// two-space indent, element prefix, separators — replicates exactly what
// SuiteReport.WriteJSON's json.Encoder produces for the whole report, which
// the equivalence test pins.
func (a *SuiteAggregator) emitJSON(v *VariantResult) error {
	if a.opts.JSON == nil {
		return nil
	}
	if !a.jsonStarted {
		a.jsonStarted = true
		if _, err := io.WriteString(a.opts.JSON, "{\n  \"Variants\": [\n    "); err != nil {
			return fmt.Errorf("autonosql: encoding suite report: %w", err)
		}
	} else if _, err := io.WriteString(a.opts.JSON, ",\n    "); err != nil {
		return fmt.Errorf("autonosql: encoding suite report: %w", err)
	}
	// Elements sit two indent levels deep: prefix every continuation line
	// with four spaces, indenting nested levels by two more.
	b, err := json.MarshalIndent(v, "    ", "  ")
	if err != nil {
		return fmt.Errorf("autonosql: encoding suite report variant %q: %w", v.Name, err)
	}
	if _, err := a.opts.JSON.Write(b); err != nil {
		return fmt.Errorf("autonosql: encoding suite report: %w", err)
	}
	return nil
}

func (a *SuiteAggregator) ensureCSVHeader() error {
	if !a.csvHeaderDone {
		a.csvHeaderDone = true
		if err := a.csvW.Write(SuiteCSVHeader()); err != nil {
			return fmt.Errorf("autonosql: writing suite CSV header: %w", err)
		}
	}
	return nil
}

func (a *SuiteAggregator) ensureTenantsCSVHeader() error {
	if !a.tenantsCSVHeaderDone {
		a.tenantsCSVHeaderDone = true
		if err := a.tenantsCSVW.Write(TenantCSVHeader()); err != nil {
			return fmt.Errorf("autonosql: writing tenant CSV header: %w", err)
		}
	}
	return nil
}

// writeCSVRow appends one completed variant to the streamed CSV.
func (a *SuiteAggregator) writeCSVRow(v *VariantResult) error {
	if err := a.ensureCSVHeader(); err != nil {
		return err
	}
	if err := a.csvW.Write(v.csvRow()); err != nil {
		return fmt.Errorf("autonosql: writing suite CSV row %q: %w", v.Name, err)
	}
	a.csvW.Flush()
	if err := a.csvW.Error(); err != nil {
		return fmt.Errorf("autonosql: writing suite CSV: %w", err)
	}
	return nil
}

// writeTenantRows appends one completed variant's tenant rows to the
// streamed per-tenant CSV.
func (a *SuiteAggregator) writeTenantRows(v *VariantResult) error {
	if err := a.ensureTenantsCSVHeader(); err != nil {
		return err
	}
	for _, tr := range v.Report.Tenants {
		if err := a.tenantsCSVW.Write(tenantCSVRow(v.Name, tr)); err != nil {
			return fmt.Errorf("autonosql: writing tenant CSV row %q/%q: %w", v.Name, tr.Name, err)
		}
	}
	a.tenantsCSVW.Flush()
	if err := a.tenantsCSVW.Error(); err != nil {
		return fmt.Errorf("autonosql: writing tenant CSV: %w", err)
	}
	return nil
}

// spill writes one variant's complete result to its own file. The index
// prefix keeps file names unique even when two variant names sanitize to the
// same string, and keeps a directory listing in variant order.
func (a *SuiteAggregator) spill(idx int, v *VariantResult) error {
	if !a.spillReady {
		if err := os.MkdirAll(a.opts.SpillDir, 0o755); err != nil {
			return fmt.Errorf("autonosql: creating spill directory: %w", err)
		}
		a.spillReady = true
	}
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("autonosql: encoding spilled variant %q: %w", v.Name, err)
	}
	b = append(b, '\n')
	path := filepath.Join(a.opts.SpillDir, fmt.Sprintf("%06d_%s.report.json", idx, sanitizeFileName(v.Name)))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("autonosql: spilling variant %q: %w", v.Name, err)
	}
	return nil
}

// sanitizeFileName maps a variant name (which contains spaces and '=') onto
// a filesystem-safe token. Distinct names can collide after sanitization;
// callers that derive file names from it must disambiguate (the spill path
// prefixes the variant index).
func sanitizeFileName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
