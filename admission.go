package autonosql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// AdmissionSpec configures tenant-scoped admission control for the smart
// controller. When enabled, the planner may throttle a noisy non-gold tenant
// — shedding its excess arrivals through a deterministic token bucket before
// they reach the store — instead of scaling the whole cluster for it. The
// zero value disables admission control and reproduces pre-admission
// behaviour exactly.
// AdmissionMode selects what happens to a throttled tenant's excess arrivals.
type AdmissionMode string

const (
	// AdmissionShed rejects excess arrivals immediately: the client sees an
	// ErrAdmissionShed failure and the tenant's availability clause prices
	// the rejection. This is the default (and the zero value "" means shed).
	AdmissionShed AdmissionMode = "shed"
	// AdmissionDelay queues excess arrivals in a bounded per-tenant queue
	// and forwards them as the token bucket refills: clients see added
	// latency instead of failures, the SLA pressure moves from the
	// availability clause to the latency clauses. Queue overflow still
	// sheds.
	AdmissionDelay AdmissionMode = "delay"
)

type AdmissionSpec struct {
	// Enabled allows throttle / unthrottle actions.
	Enabled bool
	// Mode selects shed (reject excess, the default) or delay (queue
	// excess) behaviour for throttled tenants.
	Mode AdmissionMode
	// ThrottleFraction is the share of a tenant's observed offered rate a
	// throttle action admits; each further throttle multiplies again.
	// Zero selects the default (0.5).
	ThrottleFraction float64
	// MinRate is the admission floor in ops/s below which the controller
	// never throttles a tenant. Zero selects the default (50).
	MinRate float64
	// Cooldown is the minimum time between admission actions on the same
	// tenant. Cooldowns are keyed per (action, tenant), so throttling one
	// tenant never delays throttling another. Zero selects the default (60s).
	Cooldown time.Duration
	// Holdoff is how long the driving pressure must have been gone before a
	// throttled tenant is released. Zero selects the default (90s).
	Holdoff time.Duration
}

// validate reports whether the admission spec is well formed.
func (a AdmissionSpec) validate() error {
	switch a.Mode {
	case "", AdmissionShed, AdmissionDelay:
	default:
		return fmt.Errorf("admission: unknown mode %q (want %q or %q)", a.Mode, AdmissionShed, AdmissionDelay)
	}
	if math.IsNaN(a.ThrottleFraction) || a.ThrottleFraction < 0 || a.ThrottleFraction >= 1 {
		return fmt.Errorf("admission: ThrottleFraction %v must be within [0, 1)", a.ThrottleFraction)
	}
	if !finiteNonNegative(a.MinRate) {
		return fmt.Errorf("admission: MinRate must be finite and non-negative")
	}
	if a.Cooldown < 0 || a.Holdoff < 0 {
		return fmt.Errorf("admission: cooldowns must be non-negative")
	}
	return nil
}

// ParseAdmissionSpec parses the -admission DSL:
//
//	off | on[:mode=shed|delay][:frac=F][:floor=R][:cooldown=D][:hold=D]
//
// where mode selects what happens to excess arrivals (shed rejects them, the
// default; delay queues them and charges the wait as latency), frac is the
// admitted share of the target tenant's offered rate in (0, 1), floor the
// minimum admission rate in ops/s, and cooldown / hold the per-tenant action
// cooldown and the release holdoff as Go durations. Examples:
//
//	on
//	on:frac=0.4:floor=100
//	on:mode=delay:cooldown=2m:hold=90s
//
// An empty string parses to "off". Every spec the parser accepts passes
// ScenarioSpec validation.
func ParseAdmissionSpec(s string) (AdmissionSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return AdmissionSpec{}, nil
	}
	fields := strings.Split(s, ":")
	var spec AdmissionSpec
	switch strings.ToLower(strings.TrimSpace(fields[0])) {
	case "off":
		if len(fields) > 1 {
			return AdmissionSpec{}, fmt.Errorf("autonosql: admission %q: \"off\" takes no options", s)
		}
		return AdmissionSpec{}, nil
	case "on":
		spec.Enabled = true
	default:
		return AdmissionSpec{}, fmt.Errorf("autonosql: admission %q: want \"on\" or \"off\"", s)
	}
	for _, opt := range fields[1:] {
		opt = strings.TrimSpace(opt)
		switch {
		case strings.HasPrefix(opt, "mode="):
			switch mode := AdmissionMode(strings.ToLower(opt[5:])); mode {
			case AdmissionShed, AdmissionDelay:
				spec.Mode = mode
			default:
				return AdmissionSpec{}, fmt.Errorf("autonosql: admission mode %q must be %q or %q", opt, AdmissionShed, AdmissionDelay)
			}
		case strings.HasPrefix(opt, "frac="):
			frac, err := strconv.ParseFloat(opt[5:], 64)
			if err != nil || math.IsNaN(frac) || frac <= 0 || frac >= 1 {
				return AdmissionSpec{}, fmt.Errorf("autonosql: admission fraction %q must be within (0, 1)", opt)
			}
			spec.ThrottleFraction = frac
		case strings.HasPrefix(opt, "floor="):
			floor, err := strconv.ParseFloat(opt[6:], 64)
			if err != nil || !finiteNonNegative(floor) || floor <= 0 {
				return AdmissionSpec{}, fmt.Errorf("autonosql: admission floor %q must be a positive number", opt)
			}
			spec.MinRate = floor
		case strings.HasPrefix(opt, "cooldown="):
			d, err := time.ParseDuration(opt[9:])
			if err != nil || d <= 0 {
				return AdmissionSpec{}, fmt.Errorf("autonosql: admission cooldown %q must be a positive duration", opt)
			}
			spec.Cooldown = d
		case strings.HasPrefix(opt, "hold="):
			d, err := time.ParseDuration(opt[5:])
			if err != nil || d <= 0 {
				return AdmissionSpec{}, fmt.Errorf("autonosql: admission holdoff %q must be a positive duration", opt)
			}
			spec.Holdoff = d
		default:
			return AdmissionSpec{}, fmt.Errorf("autonosql: unknown admission option %q (want mode=, frac=, floor=, cooldown= or hold=)", opt)
		}
	}
	return spec, nil
}
