package autonosql_test

// Golden-report determinism tests. The fingerprints under testdata/ were
// captured before the hot-path optimisation work (event pooling, scratch
// buffers, cached node lists — see PERFORMANCE.md) and must stay bit-for-bit
// identical: every float in a Report is fingerprinted via math.Float64bits,
// so even a 1-ULP drift in any statistic fails the test. Regenerate with
//
//	go test -run TestGolden -update-golden
//
// only when a change is *meant* to alter simulation results, and say why in
// the commit message.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autonosql"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fingerprints")

// fingerprintReport delegates to the now-public Report.Fingerprint, which
// moved into the library so the adversarial hunt harness and the replay
// byte-identity check can score runs with exactly the digest the golden
// tests pin.
func fingerprintReport(r *autonosql.Report) string {
	return r.Fingerprint()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden_"+name+".txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	if string(want) == got {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("fingerprint line %d changed:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	t.Fatalf("report fingerprint diverged from %s: the simulation is no longer bit-for-bit reproducible", path)
}

// goldenSpec is the fixed-seed quick-scale scenario all golden cases build on.
func goldenSpec(seed int64, mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = 60 * time.Second
	spec.Workload.BaseOpsPerSec = 2000
	spec.Controller.Mode = mode
	return spec
}

func runGoldenScenario(t *testing.T, spec autonosql.ScenarioSpec) *autonosql.Report {
	t.Helper()
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestGoldenScenarioNoController pins the plain store + workload hot path.
func TestGoldenScenarioNoController(t *testing.T) {
	rep := runGoldenScenario(t, goldenSpec(42, autonosql.ControllerNone))
	checkGolden(t, "scenario_none_seed42", fingerprintReport(rep))
}

// TestGoldenScenarioSmart pins the full MAPE-K path: monitoring, analysis,
// planning and reconfiguration actions all feed off the same event loop.
func TestGoldenScenarioSmart(t *testing.T) {
	spec := goldenSpec(1234, autonosql.ControllerSmart)
	spec.Duration = 2 * time.Minute
	rep := runGoldenScenario(t, spec)
	checkGolden(t, "scenario_smart_seed1234", fingerprintReport(rep))
}

// TestGoldenScenarioRerunIdentical runs the same fixed-seed scenario twice in
// one process and requires identical fingerprints, so state leaking between
// runs (pools, caches, scratch buffers) is caught even without golden files.
func TestGoldenScenarioRerunIdentical(t *testing.T) {
	a := fingerprintReport(runGoldenScenario(t, goldenSpec(7, autonosql.ControllerNone)))
	b := fingerprintReport(runGoldenScenario(t, goldenSpec(7, autonosql.ControllerNone)))
	if a != b {
		t.Fatalf("two runs of the same seed produced different fingerprints:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// goldenFaultSpec is the fixed-seed scenario the fault golden cases build
// on: four nodes so crashes and partitions leave a serving majority.
func goldenFaultSpec(seed int64) autonosql.ScenarioSpec {
	spec := goldenSpec(seed, autonosql.ControllerNone)
	spec.Duration = 90 * time.Second
	spec.Cluster.InitialNodes = 4
	return spec
}

// TestGoldenScenarioCrashRestart pins the crash+restart fault path: node
// failure mid-run, hint accumulation while it is down, hint replay and window
// resolution after the restart. The injector draws targets from its own
// stream, so the schedule — and therefore every statistic — is bit-for-bit
// reproducible.
func TestGoldenScenarioCrashRestart(t *testing.T) {
	spec := goldenFaultSpec(4242)
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.CrashFault(20*time.Second, 30*time.Second, 1),
	}}
	rep := runGoldenScenario(t, spec)
	if len(rep.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(rep.Faults))
	}
	checkGolden(t, "scenario_crash_seed4242", fingerprintReport(rep))
}

// TestGoldenScenarioPartitionHeal pins the partition+heal fault path:
// coordinator-relative replica liveness, hint queueing across the cut, and
// the convergence burst after the heal.
func TestGoldenScenarioPartitionHeal(t *testing.T) {
	spec := goldenFaultSpec(7777)
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.PartitionFault(20*time.Second, 40*time.Second, 2),
	}}
	rep := runGoldenScenario(t, spec)
	if len(rep.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(rep.Faults))
	}
	checkGolden(t, "scenario_partition_seed7777", fingerprintReport(rep))
}

// TestFaultSuiteConcurrentEqualsSequential pins that fault injection keeps
// the suite runner's core guarantee: with faults on the grid, a concurrent
// run produces bit-for-bit the same reports as a sequential one.
func TestFaultSuiteConcurrentEqualsSequential(t *testing.T) {
	base := goldenFaultSpec(11)
	base.Duration = 45 * time.Second
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
			Faults:      autonosql.DefaultFaultProfiles(base.Duration)[:3], // none, crash, partition
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			// fingerprintReport folds the fault windows in, so the
			// comparison covers the injected schedules too.
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		return b.String()
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(4)
	if sequential != concurrent {
		t.Fatal("fault suite diverged between sequential and concurrent execution: fault injection is not deterministic under parallelism")
	}
}

// TestGoldenSuite pins a small two-variant suite, exercising the concurrent
// runner: the aggregated report must be identical whatever the parallelism.
func TestGoldenSuite(t *testing.T) {
	base := goldenSpec(7, autonosql.ControllerNone)
	base.Duration = 45 * time.Second
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerReactive},
		},
	}
	for _, parallelism := range []int{1, 2} {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		checkGolden(t, "suite_controllers_seed7", b.String())
	}
}
