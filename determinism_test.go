package autonosql_test

// Golden-report determinism tests. The fingerprints under testdata/ were
// captured before the hot-path optimisation work (event pooling, scratch
// buffers, cached node lists — see PERFORMANCE.md) and must stay bit-for-bit
// identical: every float in a Report is fingerprinted via math.Float64bits,
// so even a 1-ULP drift in any statistic fails the test. Regenerate with
//
//	go test -run TestGolden -update-golden
//
// only when a change is *meant* to alter simulation results, and say why in
// the commit message.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"autonosql"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden fingerprints")

// fpFloat renders a float64 so that any bit-level change is visible.
func fpFloat(v float64) string {
	return fmt.Sprintf("%#016x", math.Float64bits(v))
}

func fpLatency(b *strings.Builder, name string, l autonosql.LatencySummary) {
	fmt.Fprintf(b, "%s: mean=%s p50=%s p95=%s p99=%s max=%s\n",
		name, fpFloat(l.Mean), fpFloat(l.P50), fpFloat(l.P95), fpFloat(l.P99), fpFloat(l.Max))
}

// fingerprintReport folds every number a Report carries into a readable,
// line-oriented fingerprint. Time series are folded into a running FNV-style
// mix of their exact float bits so the fingerprint stays small.
func fingerprintReport(r *autonosql.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops: reads=%d writes=%d failedReads=%d failedWrites=%d stale=%d staleRate=%s\n",
		r.Reads, r.Writes, r.FailedReads, r.FailedWrites, r.StaleReads, fpFloat(r.StaleReadRate))
	fpLatency(&b, "window", r.Window)
	fmt.Fprintf(&b, "windowEstimateP95=%s\n", fpFloat(r.EstimatedWindowP95))
	fpLatency(&b, "readLatency", r.ReadLatency)
	fpLatency(&b, "writeLatency", r.WriteLatency)
	fmt.Fprintf(&b, "monitoring: probeOps=%d overhead=%s\n",
		r.MonitoringProbeOps, fpFloat(r.MonitoringOverheadFraction))
	fmt.Fprintf(&b, "sla: compliance=%s vWindow=%s vRead=%s vWrite=%s vAvail=%s vTotal=%s\n",
		fpFloat(r.ComplianceRatio), fpFloat(r.Violations.Window), fpFloat(r.Violations.ReadLatency),
		fpFloat(r.Violations.WriteLatency), fpFloat(r.Violations.Availability), fpFloat(r.Violations.Total))
	fmt.Fprintf(&b, "cost: nodeHours=%s infra=%s comp=%s penalty=%s total=%s\n",
		fpFloat(r.Cost.NodeHours), fpFloat(r.Cost.Infrastructure), fpFloat(r.Cost.Compensation),
		fpFloat(r.Cost.Penalty), fpFloat(r.Cost.Total))
	fmt.Fprintf(&b, "config: nodes=%d rf=%d rcl=%s wcl=%s min=%d max=%d reconfigs=%d decisions=%d\n",
		r.FinalConfiguration.ClusterSize, r.FinalConfiguration.ReplicationFactor,
		r.FinalConfiguration.ReadConsistency, r.FinalConfiguration.WriteConsistency,
		r.MinClusterSize, r.MaxClusterSize, r.Reconfigurations, len(r.Decisions))

	// Fault windows (absent for fault-free runs, so the pre-fault golden
	// files are unaffected): every statistic buildFaultWindows derives is
	// pinned bit-for-bit, not just the window count.
	for _, fw := range r.Faults {
		fmt.Fprintf(&b, "fault %s %v..%v nodes=%v sev=%s samples=%d mean=%s peak=%s viol=%s\n",
			fw.Kind, fw.Start, fw.End, fw.Nodes, fpFloat(fw.Severity), fw.Samples,
			fpFloat(fw.WindowP95Mean), fpFloat(fw.WindowP95Peak), fpFloat(fw.SLAViolationFraction))
	}

	// Tenant sections (absent for single-tenant runs, so the pre-tenant
	// golden files are unaffected): every per-tenant statistic is pinned
	// bit-for-bit. Admission / placement lines appear only for treated
	// tenants, so pre-admission golden files are unaffected too.
	for _, tr := range r.Tenants {
		fmt.Fprintf(&b, "tenant %s class=%s ops: reads=%d writes=%d failedReads=%d failedWrites=%d stale=%d staleRate=%s\n",
			tr.Name, tr.Class, tr.Reads, tr.Writes, tr.FailedReads, tr.FailedWrites,
			tr.StaleReads, fpFloat(tr.StaleReadRate))
		fpLatency(&b, "tenant "+tr.Name+" window", tr.Window)
		fpLatency(&b, "tenant "+tr.Name+" readLatency", tr.ReadLatency)
		fpLatency(&b, "tenant "+tr.Name+" writeLatency", tr.WriteLatency)
		fmt.Fprintf(&b, "tenant %s sla: compliance=%s vWindow=%s vRead=%s vWrite=%s vAvail=%s vTotal=%s penalty=%s comp=%s\n",
			tr.Name, fpFloat(tr.ComplianceRatio), fpFloat(tr.Violations.Window),
			fpFloat(tr.Violations.ReadLatency), fpFloat(tr.Violations.WriteLatency),
			fpFloat(tr.Violations.Availability), fpFloat(tr.Violations.Total),
			fpFloat(tr.PenaltyCost), fpFloat(tr.CompensationCost))
		if tr.ShedOps > 0 || len(tr.Throttles) > 0 || tr.Pinned {
			fmt.Fprintf(&b, "tenant %s admission: shed=%d throttledMin=%s pinned=%v\n",
				tr.Name, tr.ShedOps, fpFloat(tr.ThrottledMinutes), tr.Pinned)
			for _, tw := range tr.Throttles {
				fmt.Fprintf(&b, "tenant %s throttle %v..%v rate=%s\n",
					tr.Name, tw.Start, tw.End, fpFloat(tw.Rate))
			}
		}
	}

	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := r.Series[name]
		mix := uint64(1469598103934665603)
		for _, p := range pts {
			mix = (mix ^ uint64(p.At)) * 1099511628211
			mix = (mix ^ math.Float64bits(p.Value)) * 1099511628211
		}
		fmt.Fprintf(&b, "series %s: n=%d mix=%#016x\n", name, len(pts), mix)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden_"+name+".txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	if string(want) == got {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("fingerprint line %d changed:\n  want: %s\n  got:  %s", i+1, w, g)
		}
	}
	t.Fatalf("report fingerprint diverged from %s: the simulation is no longer bit-for-bit reproducible", path)
}

// goldenSpec is the fixed-seed quick-scale scenario all golden cases build on.
func goldenSpec(seed int64, mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = 60 * time.Second
	spec.Workload.BaseOpsPerSec = 2000
	spec.Controller.Mode = mode
	return spec
}

func runGoldenScenario(t *testing.T, spec autonosql.ScenarioSpec) *autonosql.Report {
	t.Helper()
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestGoldenScenarioNoController pins the plain store + workload hot path.
func TestGoldenScenarioNoController(t *testing.T) {
	rep := runGoldenScenario(t, goldenSpec(42, autonosql.ControllerNone))
	checkGolden(t, "scenario_none_seed42", fingerprintReport(rep))
}

// TestGoldenScenarioSmart pins the full MAPE-K path: monitoring, analysis,
// planning and reconfiguration actions all feed off the same event loop.
func TestGoldenScenarioSmart(t *testing.T) {
	spec := goldenSpec(1234, autonosql.ControllerSmart)
	spec.Duration = 2 * time.Minute
	rep := runGoldenScenario(t, spec)
	checkGolden(t, "scenario_smart_seed1234", fingerprintReport(rep))
}

// TestGoldenScenarioRerunIdentical runs the same fixed-seed scenario twice in
// one process and requires identical fingerprints, so state leaking between
// runs (pools, caches, scratch buffers) is caught even without golden files.
func TestGoldenScenarioRerunIdentical(t *testing.T) {
	a := fingerprintReport(runGoldenScenario(t, goldenSpec(7, autonosql.ControllerNone)))
	b := fingerprintReport(runGoldenScenario(t, goldenSpec(7, autonosql.ControllerNone)))
	if a != b {
		t.Fatalf("two runs of the same seed produced different fingerprints:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}

// goldenFaultSpec is the fixed-seed scenario the fault golden cases build
// on: four nodes so crashes and partitions leave a serving majority.
func goldenFaultSpec(seed int64) autonosql.ScenarioSpec {
	spec := goldenSpec(seed, autonosql.ControllerNone)
	spec.Duration = 90 * time.Second
	spec.Cluster.InitialNodes = 4
	return spec
}

// TestGoldenScenarioCrashRestart pins the crash+restart fault path: node
// failure mid-run, hint accumulation while it is down, hint replay and window
// resolution after the restart. The injector draws targets from its own
// stream, so the schedule — and therefore every statistic — is bit-for-bit
// reproducible.
func TestGoldenScenarioCrashRestart(t *testing.T) {
	spec := goldenFaultSpec(4242)
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.CrashFault(20*time.Second, 30*time.Second, 1),
	}}
	rep := runGoldenScenario(t, spec)
	if len(rep.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(rep.Faults))
	}
	checkGolden(t, "scenario_crash_seed4242", fingerprintReport(rep))
}

// TestGoldenScenarioPartitionHeal pins the partition+heal fault path:
// coordinator-relative replica liveness, hint queueing across the cut, and
// the convergence burst after the heal.
func TestGoldenScenarioPartitionHeal(t *testing.T) {
	spec := goldenFaultSpec(7777)
	spec.Faults = autonosql.FaultPlan{Faults: []autonosql.FaultSpec{
		autonosql.PartitionFault(20*time.Second, 40*time.Second, 2),
	}}
	rep := runGoldenScenario(t, spec)
	if len(rep.Faults) != 1 {
		t.Fatalf("report has %d fault windows, want 1", len(rep.Faults))
	}
	checkGolden(t, "scenario_partition_seed7777", fingerprintReport(rep))
}

// TestFaultSuiteConcurrentEqualsSequential pins that fault injection keeps
// the suite runner's core guarantee: with faults on the grid, a concurrent
// run produces bit-for-bit the same reports as a sequential one.
func TestFaultSuiteConcurrentEqualsSequential(t *testing.T) {
	base := goldenFaultSpec(11)
	base.Duration = 45 * time.Second
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
			Faults:      autonosql.DefaultFaultProfiles(base.Duration)[:3], // none, crash, partition
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			// fingerprintReport folds the fault windows in, so the
			// comparison covers the injected schedules too.
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		return b.String()
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(4)
	if sequential != concurrent {
		t.Fatal("fault suite diverged between sequential and concurrent execution: fault injection is not deterministic under parallelism")
	}
}

// TestGoldenSuite pins a small two-variant suite, exercising the concurrent
// runner: the aggregated report must be identical whatever the parallelism.
func TestGoldenSuite(t *testing.T) {
	base := goldenSpec(7, autonosql.ControllerNone)
	base.Duration = 45 * time.Second
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerReactive},
		},
	}
	for _, parallelism := range []int{1, 2} {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		checkGolden(t, "suite_controllers_seed7", b.String())
	}
}
