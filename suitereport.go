package autonosql

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"autonosql/internal/text"
)

// VariantResult pairs one suite variant with the report its run produced, or
// with the error that kept it from producing one.
type VariantResult struct {
	// Name is the variant name.
	Name string
	// Spec is the exact scenario specification the run used.
	Spec ScenarioSpec
	// Report is the run's outcome. It is nil when the variant failed.
	Report *Report
	// Err is the variant's failure; Report is nil exactly when Err is
	// non-nil. It is excluded from JSON (errors do not round-trip); exports
	// of a partial suite carry failed variants with a null Report, and the
	// aggregate error returned by Run names them.
	Err error `json:"-"`
}

// SuiteReport is the aggregated outcome of one suite run: every variant's
// report in execution order, plus comparison tables and CSV/JSON export.
// A partial report (from a run that failed mid-suite) additionally carries
// the failed variants with Err set; every table and export below skips them.
type SuiteReport struct {
	// Variants are the per-variant results, ordered by variant index. After
	// a failed run the list holds every variant that was attempted —
	// completed ones with their reports, failed ones with Err — and omits
	// variants the abort skipped entirely.
	Variants []VariantResult
	// Elapsed is the wall-clock time the suite run took. It is measurement
	// metadata, not simulation output, so it is excluded from the JSON export
	// to keep exports of identical suites byte-identical.
	Elapsed time.Duration `json:"-"`
	// Parallelism is the number of workers the run actually used: the
	// requested bound resolved against GOMAXPROCS and clamped to the variant
	// count. Like Elapsed it is measurement metadata, excluded from JSON.
	Parallelism int `json:"-"`
}

// RunMeta is the wall-clock measurement metadata of one suite run: how long
// it took, how many workers it used, and what it attempted. It is kept out of
// the determinism-sensitive report bytes — two identical suites export
// byte-identical CSV/JSON however fast they ran — so callers that care about
// it (the nosqlsimd daemon persists one envelope per job) store it alongside
// the export rather than inside it.
type RunMeta struct {
	// Elapsed is the wall-clock time the run took.
	Elapsed time.Duration
	// Parallelism is the number of workers actually used: the requested
	// bound resolved against GOMAXPROCS and clamped to the variant count.
	Parallelism int
	// Variants is the number of variants attempted (completed plus failed).
	Variants int
	// Failed is the number of attempted variants that returned an error.
	Failed int `json:",omitempty"`
}

// ScenariosPerSecond returns the run's wall-clock throughput in scenarios per
// second (zero when the elapsed time was not recorded).
func (m RunMeta) ScenariosPerSecond() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Variants) / m.Elapsed.Seconds()
}

// RunMeta returns the report's run metadata as a standalone envelope, for
// callers that persist it next to the determinism-sensitive export.
func (r *SuiteReport) RunMeta() RunMeta {
	m := RunMeta{Elapsed: r.Elapsed, Parallelism: r.Parallelism, Variants: len(r.Variants)}
	for i := range r.Variants {
		if r.Variants[i].Err != nil {
			m.Failed++
		}
	}
	return m
}

// ScenariosPerSecond returns the suite's wall-clock throughput in scenarios
// per second (zero when the elapsed time was not recorded — in particular
// after a WriteJSON/ReadSuiteReportJSON round trip, which drops Elapsed; see
// WriteJSON).
func (r *SuiteReport) ScenariosPerSecond() float64 {
	return r.RunMeta().ScenariosPerSecond()
}

// Len returns the number of variant results.
func (r *SuiteReport) Len() int { return len(r.Variants) }

// Find returns the result with the given variant name, or nil.
func (r *SuiteReport) Find(name string) *VariantResult {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// Reports returns the per-variant reports keyed by variant name. Failed
// variants (nil report) are omitted.
func (r *SuiteReport) Reports() map[string]*Report {
	out := make(map[string]*Report, len(r.Variants))
	for _, v := range r.Variants {
		if v.Report != nil {
			out[v.Name] = v.Report
		}
	}
	return out
}

// Table titles and column headers, shared between the in-memory SuiteReport
// renderers and the streaming SuiteAggregator so both produce byte-identical
// tables from the same rows.
var (
	suiteComparisonTitle   = "suite comparison — SLA outcomes"
	suiteComparisonColumns = []string{"variant", "window p50 (ms)", "window p95 (ms)", "window p99 (ms)",
		"read p99 (ms)", "write p99 (ms)", "stale reads", "violation min", "compliance"}
	suiteCostTitle   = "suite comparison — cost"
	suiteCostColumns = []string{"variant", "node-hours", "infrastructure", "compensation", "penalty",
		"total cost", "reconfigs", "nodes (min..max)"}
	suiteFaultsTitle   = "suite comparison — fault windows"
	suiteFaultsColumns = []string{"variant", "fault", "active", "nodes", "window p95 mean (ms)",
		"window p95 peak (ms)", "samples in violation"}
	suiteTenantsTitle   = "suite comparison — tenants"
	suiteTenantsColumns = []string{"variant", "tenant", "class", "window p95 (ms)", "read p99 (ms)",
		"stale reads", "violation min", "compliance", "penalty", "throttle/placement"}
)

// comparisonRow renders one variant's SLA-outcome table row.
func comparisonRow(name string, rep *Report) []string {
	return []string{
		name,
		msCell(rep.Window.P50), msCell(rep.Window.P95), msCell(rep.Window.P99),
		msCell(rep.ReadLatency.P99), msCell(rep.WriteLatency.P99),
		strconv.FormatUint(rep.StaleReads, 10),
		fmt.Sprintf("%.1f", rep.Violations.Total),
		fmt.Sprintf("%.2f%%", rep.ComplianceRatio*100),
	}
}

// costRow renders one variant's cost table row.
func costRow(name string, rep *Report) []string {
	return []string{
		name,
		fmt.Sprintf("%.2f", rep.Cost.NodeHours),
		dollarCell(rep.Cost.Infrastructure), dollarCell(rep.Cost.Compensation),
		dollarCell(rep.Cost.Penalty), dollarCell(rep.Cost.Total),
		strconv.Itoa(rep.Reconfigurations),
		fmt.Sprintf("%d..%d", rep.MinClusterSize, rep.MaxClusterSize),
	}
}

// faultRowsFor renders one variant's fault-window table rows (nil when the
// variant injected no faults).
func faultRowsFor(name string, rep *Report) [][]string {
	var rows [][]string
	for _, fw := range rep.Faults {
		nodes := "-"
		if len(fw.Nodes) > 0 {
			nodes = fmt.Sprint(fw.Nodes)
		}
		rows = append(rows, []string{
			name,
			fw.Kind,
			fmt.Sprintf("%v..%v", fw.Start, fw.End),
			nodes,
			msCell(fw.WindowP95Mean), msCell(fw.WindowP95Peak),
			fmt.Sprintf("%.0f%%", fw.SLAViolationFraction*100),
		})
	}
	return rows
}

// tenantRowsFor renders one variant's tenant table rows (nil for
// single-tenant variants).
func tenantRowsFor(name string, rep *Report) [][]string {
	var rows [][]string
	for _, tr := range rep.Tenants {
		rows = append(rows, []string{
			name,
			tr.Name,
			tr.Class,
			msCell(tr.Window.P95), msCell(tr.ReadLatency.P99),
			strconv.FormatUint(tr.StaleReads, 10),
			fmt.Sprintf("%.1f", tr.Violations.Total),
			fmt.Sprintf("%.2f%%", tr.ComplianceRatio*100),
			dollarCell(tr.PenaltyCost + tr.CompensationCost),
			throttlePlacementCell(tr),
		})
	}
	return rows
}

// ComparisonTable renders the SLA-facing comparison across variants: the
// ground-truth inconsistency-window percentiles, client latency, stale
// reads, violation minutes and compliance.
func (r *SuiteReport) ComparisonTable() string {
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		if v.Report == nil {
			continue
		}
		rows = append(rows, comparisonRow(v.Name, v.Report))
	}
	return text.FormatAligned(suiteComparisonTitle, suiteComparisonColumns, rows, nil)
}

// CostTable renders the cost-facing comparison across variants: node-hours,
// the cost components, reconfiguration counts and cluster-size extremes.
func (r *SuiteReport) CostTable() string {
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		if v.Report == nil {
			continue
		}
		rows = append(rows, costRow(v.Name, v.Report))
	}
	return text.FormatAligned(suiteCostTitle, suiteCostColumns, rows, nil)
}

// FaultsTable renders the fault timeline across variants: every injected
// fault window with the inconsistency-window behaviour observed while it was
// active. It returns an empty string when no variant injected faults.
func (r *SuiteReport) FaultsTable() string {
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		if v.Report == nil {
			continue
		}
		rows = append(rows, faultRowsFor(v.Name, v.Report)...)
	}
	if len(rows) == 0 {
		return ""
	}
	return text.FormatAligned(suiteFaultsTitle, suiteFaultsColumns, rows, nil)
}

// TenantsTable renders the per-tenant comparison across variants: every
// tenant of every multi-tenant variant with its class, ground-truth window,
// latency, violation minutes, priced penalty, and the admission / placement
// treatment the controller applied. It returns an empty string when no
// variant declared tenants.
func (r *SuiteReport) TenantsTable() string {
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		if v.Report == nil {
			continue
		}
		rows = append(rows, tenantRowsFor(v.Name, v.Report)...)
	}
	if len(rows) == 0 {
		return ""
	}
	return text.FormatAligned(suiteTenantsTitle, suiteTenantsColumns, rows, nil)
}

// throttlePlacementCell summarises one tenant's scoped-action treatment:
// throttled minutes with shed count, a "pinned" marker when the tenant's
// class held dedicated nodes, or "-" for an untreated tenant.
func throttlePlacementCell(tr TenantReport) string {
	parts := ""
	if tr.ThrottledMinutes > 0 || tr.ShedOps > 0 {
		parts = fmt.Sprintf("%.1fmin/%d shed", tr.ThrottledMinutes, tr.ShedOps)
	}
	if tr.Pinned {
		if parts != "" {
			parts += "+pinned"
		} else {
			parts = "pinned"
		}
	}
	if parts == "" {
		return "-"
	}
	return parts
}

// String renders both comparison tables, plus the fault table when any
// variant injected faults and the tenant table when any variant declared
// tenants.
func (r *SuiteReport) String() string {
	s := r.ComparisonTable() + "\n" + r.CostTable()
	if ft := r.FaultsTable(); ft != "" {
		s += "\n" + ft
	}
	if tt := r.TenantsTable(); tt != "" {
		s += "\n" + tt
	}
	return s
}

// CheapestCompliant returns the variant with the lowest total cost among
// those whose total violation minutes do not exceed maxViolationMinutes, or
// nil when no variant qualifies. Ties break towards the earlier variant, so
// the answer is deterministic.
func (r *SuiteReport) CheapestCompliant(maxViolationMinutes float64) *VariantResult {
	var best *VariantResult
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Report == nil {
			continue
		}
		if v.Report.Violations.Total > maxViolationMinutes {
			continue
		}
		if best == nil || v.Report.Cost.Total < best.Report.Cost.Total {
			best = v
		}
	}
	return best
}

// SuiteCSVHeader is the column header of the CSV export, in column order.
func SuiteCSVHeader() []string {
	return []string{
		"variant", "seed", "duration_s", "pattern", "controller", "initial_nodes", "sla_window_p95_ms",
		"reads", "writes", "failed_reads", "failed_writes", "stale_reads",
		"window_p50_ms", "window_p95_ms", "window_p99_ms", "window_max_ms", "window_estimate_p95_ms",
		"read_p99_ms", "write_p99_ms",
		"violation_min_window", "violation_min_read", "violation_min_write", "violation_min_availability",
		"violation_min_total", "compliance",
		"node_hours", "cost_infrastructure", "cost_compensation", "cost_penalty", "cost_total",
		"reconfigurations", "min_nodes", "max_nodes",
	}
}

// csvRow renders one variant as CSV cells matching SuiteCSVHeader.
func (v *VariantResult) csvRow() []string {
	rep := v.Report
	f := func(val float64) string { return strconv.FormatFloat(val, 'g', -1, 64) }
	u := func(val uint64) string { return strconv.FormatUint(val, 10) }
	return []string{
		v.Name,
		strconv.FormatInt(v.Spec.Seed, 10),
		f(v.Spec.Duration.Seconds()),
		string(patternOrConstant(v.Spec.Workload.Pattern)),
		string(modeOrNone(v.Spec.Controller.Mode)),
		strconv.Itoa(v.Spec.Cluster.InitialNodes),
		f(v.Spec.SLA.MaxWindowP95.Seconds() * 1000),
		u(rep.Reads), u(rep.Writes), u(rep.FailedReads), u(rep.FailedWrites), u(rep.StaleReads),
		f(rep.Window.P50 * 1000), f(rep.Window.P95 * 1000), f(rep.Window.P99 * 1000),
		f(rep.Window.Max * 1000), f(rep.EstimatedWindowP95 * 1000),
		f(rep.ReadLatency.P99 * 1000), f(rep.WriteLatency.P99 * 1000),
		f(rep.Violations.Window), f(rep.Violations.ReadLatency), f(rep.Violations.WriteLatency),
		f(rep.Violations.Availability), f(rep.Violations.Total), f(rep.ComplianceRatio),
		f(rep.Cost.NodeHours), f(rep.Cost.Infrastructure), f(rep.Cost.Compensation),
		f(rep.Cost.Penalty), f(rep.Cost.Total),
		strconv.Itoa(rep.Reconfigurations),
		strconv.Itoa(rep.MinClusterSize), strconv.Itoa(rep.MaxClusterSize),
	}
}

// WriteCSV writes the suite outcome as one CSV record per variant, headed by
// SuiteCSVHeader. The numeric cells use the shortest exact representation,
// so a written value parses back to the identical float64.
func (r *SuiteReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SuiteCSVHeader()); err != nil {
		return fmt.Errorf("autonosql: writing suite CSV header: %w", err)
	}
	for i := range r.Variants {
		if r.Variants[i].Report == nil {
			continue
		}
		if err := cw.Write(r.Variants[i].csvRow()); err != nil {
			return fmt.Errorf("autonosql: writing suite CSV row %q: %w", r.Variants[i].Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TenantCSVHeader is the column header of the per-tenant CSV export, in
// column order. Tenant rows live in their own export (one row per
// variant×tenant) rather than widening SuiteCSVHeader, whose shape is fixed.
func TenantCSVHeader() []string {
	return []string{
		"variant", "tenant", "class",
		"reads", "writes", "failed_reads", "failed_writes", "stale_reads",
		"window_p50_ms", "window_p95_ms", "window_p99_ms",
		"read_p99_ms", "write_p99_ms",
		"violation_min_window", "violation_min_read", "violation_min_write",
		"violation_min_availability", "violation_min_total", "compliance",
		"penalty_cost", "compensation_cost",
		"shed_ops", "throttled_min", "pinned",
	}
}

// tenantCSVRow renders one tenant of one variant as CSV cells matching
// TenantCSVHeader.
func tenantCSVRow(variant string, tr TenantReport) []string {
	f := func(val float64) string { return strconv.FormatFloat(val, 'g', -1, 64) }
	u := func(val uint64) string { return strconv.FormatUint(val, 10) }
	return []string{
		variant, tr.Name, tr.Class,
		u(tr.Reads), u(tr.Writes), u(tr.FailedReads), u(tr.FailedWrites), u(tr.StaleReads),
		f(tr.Window.P50 * 1000), f(tr.Window.P95 * 1000), f(tr.Window.P99 * 1000),
		f(tr.ReadLatency.P99 * 1000), f(tr.WriteLatency.P99 * 1000),
		f(tr.Violations.Window), f(tr.Violations.ReadLatency), f(tr.Violations.WriteLatency),
		f(tr.Violations.Availability), f(tr.Violations.Total), f(tr.ComplianceRatio),
		f(tr.PenaltyCost), f(tr.CompensationCost),
		u(tr.ShedOps), f(tr.ThrottledMinutes), strconv.FormatBool(tr.Pinned),
	}
}

// WriteTenantsCSV writes the per-tenant outcome as one CSV record per
// variant×tenant, headed by TenantCSVHeader. Variants without tenants
// contribute no rows.
func (r *SuiteReport) WriteTenantsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TenantCSVHeader()); err != nil {
		return fmt.Errorf("autonosql: writing tenant CSV header: %w", err)
	}
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Report == nil {
			continue
		}
		for _, tr := range v.Report.Tenants {
			if err := cw.Write(tenantCSVRow(v.Name, tr)); err != nil {
				return fmt.Errorf("autonosql: writing tenant CSV row %q/%q: %w", v.Name, tr.Name, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the complete suite report — specs, reports and series —
// as indented JSON. ReadSuiteReportJSON restores the simulation outcome
// losslessly; the wall-clock run metadata (Elapsed, Parallelism) is
// deliberately NOT part of the export — identical suites must export
// byte-identical bytes however fast they happened to run — so
// ScenariosPerSecond reads zero after a round trip. Callers that need the
// metadata persist the RunMeta envelope alongside the export (the nosqlsimd
// daemon stores one per job).
func (r *SuiteReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("autonosql: encoding suite report: %w", err)
	}
	return nil
}

// ReadSuiteReportJSON reads a suite report written by WriteJSON. The
// restored report carries no run metadata (see WriteJSON); pair it with a
// persisted RunMeta envelope when Elapsed/Parallelism matter.
func ReadSuiteReportJSON(rd io.Reader) (*SuiteReport, error) {
	var r SuiteReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("autonosql: decoding suite report: %w", err)
	}
	return &r, nil
}

func msCell(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1000) }
func dollarCell(v float64) string   { return fmt.Sprintf("$%.2f", v) }
