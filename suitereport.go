package autonosql

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"autonosql/internal/text"
)

// VariantResult pairs one suite variant with the report its run produced.
type VariantResult struct {
	// Name is the variant name.
	Name string
	// Spec is the exact scenario specification the run used.
	Spec ScenarioSpec
	// Report is the run's outcome.
	Report *Report
}

// SuiteReport is the aggregated outcome of one suite run: every variant's
// report in execution order, plus comparison tables and CSV/JSON export.
type SuiteReport struct {
	// Variants are the per-variant results, ordered by variant index.
	Variants []VariantResult
	// Elapsed is the wall-clock time the suite run took. It is measurement
	// metadata, not simulation output, so it is excluded from the JSON export
	// to keep exports of identical suites byte-identical.
	Elapsed time.Duration `json:"-"`
	// Parallelism is the number of workers the run actually used: the
	// requested bound resolved against GOMAXPROCS and clamped to the variant
	// count. Like Elapsed it is measurement metadata, excluded from JSON.
	Parallelism int `json:"-"`
}

// ScenariosPerSecond returns the suite's wall-clock throughput in scenarios
// per second (zero when the elapsed time was not recorded).
func (r *SuiteReport) ScenariosPerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Variants)) / r.Elapsed.Seconds()
}

// Len returns the number of variant results.
func (r *SuiteReport) Len() int { return len(r.Variants) }

// Find returns the result with the given variant name, or nil.
func (r *SuiteReport) Find(name string) *VariantResult {
	for i := range r.Variants {
		if r.Variants[i].Name == name {
			return &r.Variants[i]
		}
	}
	return nil
}

// Reports returns the per-variant reports keyed by variant name.
func (r *SuiteReport) Reports() map[string]*Report {
	out := make(map[string]*Report, len(r.Variants))
	for _, v := range r.Variants {
		out[v.Name] = v.Report
	}
	return out
}

// ComparisonTable renders the SLA-facing comparison across variants: the
// ground-truth inconsistency-window percentiles, client latency, stale
// reads, violation minutes and compliance.
func (r *SuiteReport) ComparisonTable() string {
	columns := []string{"variant", "window p50 (ms)", "window p95 (ms)", "window p99 (ms)",
		"read p99 (ms)", "write p99 (ms)", "stale reads", "violation min", "compliance"}
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		rep := v.Report
		rows = append(rows, []string{
			v.Name,
			msCell(rep.Window.P50), msCell(rep.Window.P95), msCell(rep.Window.P99),
			msCell(rep.ReadLatency.P99), msCell(rep.WriteLatency.P99),
			strconv.FormatUint(rep.StaleReads, 10),
			fmt.Sprintf("%.1f", rep.Violations.Total),
			fmt.Sprintf("%.2f%%", rep.ComplianceRatio*100),
		})
	}
	return text.FormatAligned("suite comparison — SLA outcomes", columns, rows, nil)
}

// CostTable renders the cost-facing comparison across variants: node-hours,
// the cost components, reconfiguration counts and cluster-size extremes.
func (r *SuiteReport) CostTable() string {
	columns := []string{"variant", "node-hours", "infrastructure", "compensation", "penalty",
		"total cost", "reconfigs", "nodes (min..max)"}
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		rep := v.Report
		rows = append(rows, []string{
			v.Name,
			fmt.Sprintf("%.2f", rep.Cost.NodeHours),
			dollarCell(rep.Cost.Infrastructure), dollarCell(rep.Cost.Compensation),
			dollarCell(rep.Cost.Penalty), dollarCell(rep.Cost.Total),
			strconv.Itoa(rep.Reconfigurations),
			fmt.Sprintf("%d..%d", rep.MinClusterSize, rep.MaxClusterSize),
		})
	}
	return text.FormatAligned("suite comparison — cost", columns, rows, nil)
}

// FaultsTable renders the fault timeline across variants: every injected
// fault window with the inconsistency-window behaviour observed while it was
// active. It returns an empty string when no variant injected faults.
func (r *SuiteReport) FaultsTable() string {
	columns := []string{"variant", "fault", "active", "nodes", "window p95 mean (ms)",
		"window p95 peak (ms)", "samples in violation"}
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		for _, fw := range v.Report.Faults {
			nodes := "-"
			if len(fw.Nodes) > 0 {
				nodes = fmt.Sprint(fw.Nodes)
			}
			rows = append(rows, []string{
				v.Name,
				fw.Kind,
				fmt.Sprintf("%v..%v", fw.Start, fw.End),
				nodes,
				msCell(fw.WindowP95Mean), msCell(fw.WindowP95Peak),
				fmt.Sprintf("%.0f%%", fw.SLAViolationFraction*100),
			})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	return text.FormatAligned("suite comparison — fault windows", columns, rows, nil)
}

// TenantsTable renders the per-tenant comparison across variants: every
// tenant of every multi-tenant variant with its class, ground-truth window,
// latency, violation minutes, priced penalty, and the admission / placement
// treatment the controller applied. It returns an empty string when no
// variant declared tenants.
func (r *SuiteReport) TenantsTable() string {
	columns := []string{"variant", "tenant", "class", "window p95 (ms)", "read p99 (ms)",
		"stale reads", "violation min", "compliance", "penalty", "throttle/placement"}
	rows := make([][]string, 0, len(r.Variants))
	for _, v := range r.Variants {
		for _, tr := range v.Report.Tenants {
			rows = append(rows, []string{
				v.Name,
				tr.Name,
				tr.Class,
				msCell(tr.Window.P95), msCell(tr.ReadLatency.P99),
				strconv.FormatUint(tr.StaleReads, 10),
				fmt.Sprintf("%.1f", tr.Violations.Total),
				fmt.Sprintf("%.2f%%", tr.ComplianceRatio*100),
				dollarCell(tr.PenaltyCost + tr.CompensationCost),
				throttlePlacementCell(tr),
			})
		}
	}
	if len(rows) == 0 {
		return ""
	}
	return text.FormatAligned("suite comparison — tenants", columns, rows, nil)
}

// throttlePlacementCell summarises one tenant's scoped-action treatment:
// throttled minutes with shed count, a "pinned" marker when the tenant's
// class held dedicated nodes, or "-" for an untreated tenant.
func throttlePlacementCell(tr TenantReport) string {
	parts := ""
	if tr.ThrottledMinutes > 0 || tr.ShedOps > 0 {
		parts = fmt.Sprintf("%.1fmin/%d shed", tr.ThrottledMinutes, tr.ShedOps)
	}
	if tr.Pinned {
		if parts != "" {
			parts += "+pinned"
		} else {
			parts = "pinned"
		}
	}
	if parts == "" {
		return "-"
	}
	return parts
}

// String renders both comparison tables, plus the fault table when any
// variant injected faults and the tenant table when any variant declared
// tenants.
func (r *SuiteReport) String() string {
	s := r.ComparisonTable() + "\n" + r.CostTable()
	if ft := r.FaultsTable(); ft != "" {
		s += "\n" + ft
	}
	if tt := r.TenantsTable(); tt != "" {
		s += "\n" + tt
	}
	return s
}

// CheapestCompliant returns the variant with the lowest total cost among
// those whose total violation minutes do not exceed maxViolationMinutes, or
// nil when no variant qualifies. Ties break towards the earlier variant, so
// the answer is deterministic.
func (r *SuiteReport) CheapestCompliant(maxViolationMinutes float64) *VariantResult {
	var best *VariantResult
	for i := range r.Variants {
		v := &r.Variants[i]
		if v.Report.Violations.Total > maxViolationMinutes {
			continue
		}
		if best == nil || v.Report.Cost.Total < best.Report.Cost.Total {
			best = v
		}
	}
	return best
}

// SuiteCSVHeader is the column header of the CSV export, in column order.
func SuiteCSVHeader() []string {
	return []string{
		"variant", "seed", "duration_s", "pattern", "controller", "initial_nodes", "sla_window_p95_ms",
		"reads", "writes", "failed_reads", "failed_writes", "stale_reads",
		"window_p50_ms", "window_p95_ms", "window_p99_ms", "window_max_ms", "window_estimate_p95_ms",
		"read_p99_ms", "write_p99_ms",
		"violation_min_window", "violation_min_read", "violation_min_write", "violation_min_availability",
		"violation_min_total", "compliance",
		"node_hours", "cost_infrastructure", "cost_compensation", "cost_penalty", "cost_total",
		"reconfigurations", "min_nodes", "max_nodes",
	}
}

// csvRow renders one variant as CSV cells matching SuiteCSVHeader.
func (v *VariantResult) csvRow() []string {
	rep := v.Report
	f := func(val float64) string { return strconv.FormatFloat(val, 'g', -1, 64) }
	u := func(val uint64) string { return strconv.FormatUint(val, 10) }
	return []string{
		v.Name,
		strconv.FormatInt(v.Spec.Seed, 10),
		f(v.Spec.Duration.Seconds()),
		string(patternOrConstant(v.Spec.Workload.Pattern)),
		string(modeOrNone(v.Spec.Controller.Mode)),
		strconv.Itoa(v.Spec.Cluster.InitialNodes),
		f(v.Spec.SLA.MaxWindowP95.Seconds() * 1000),
		u(rep.Reads), u(rep.Writes), u(rep.FailedReads), u(rep.FailedWrites), u(rep.StaleReads),
		f(rep.Window.P50 * 1000), f(rep.Window.P95 * 1000), f(rep.Window.P99 * 1000),
		f(rep.Window.Max * 1000), f(rep.EstimatedWindowP95 * 1000),
		f(rep.ReadLatency.P99 * 1000), f(rep.WriteLatency.P99 * 1000),
		f(rep.Violations.Window), f(rep.Violations.ReadLatency), f(rep.Violations.WriteLatency),
		f(rep.Violations.Availability), f(rep.Violations.Total), f(rep.ComplianceRatio),
		f(rep.Cost.NodeHours), f(rep.Cost.Infrastructure), f(rep.Cost.Compensation),
		f(rep.Cost.Penalty), f(rep.Cost.Total),
		strconv.Itoa(rep.Reconfigurations),
		strconv.Itoa(rep.MinClusterSize), strconv.Itoa(rep.MaxClusterSize),
	}
}

// WriteCSV writes the suite outcome as one CSV record per variant, headed by
// SuiteCSVHeader. The numeric cells use the shortest exact representation,
// so a written value parses back to the identical float64.
func (r *SuiteReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(SuiteCSVHeader()); err != nil {
		return fmt.Errorf("autonosql: writing suite CSV header: %w", err)
	}
	for i := range r.Variants {
		if err := cw.Write(r.Variants[i].csvRow()); err != nil {
			return fmt.Errorf("autonosql: writing suite CSV row %q: %w", r.Variants[i].Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TenantCSVHeader is the column header of the per-tenant CSV export, in
// column order. Tenant rows live in their own export (one row per
// variant×tenant) rather than widening SuiteCSVHeader, whose shape is fixed.
func TenantCSVHeader() []string {
	return []string{
		"variant", "tenant", "class",
		"reads", "writes", "failed_reads", "failed_writes", "stale_reads",
		"window_p50_ms", "window_p95_ms", "window_p99_ms",
		"read_p99_ms", "write_p99_ms",
		"violation_min_window", "violation_min_read", "violation_min_write",
		"violation_min_availability", "violation_min_total", "compliance",
		"penalty_cost", "compensation_cost",
		"shed_ops", "throttled_min", "pinned",
	}
}

// tenantCSVRow renders one tenant of one variant as CSV cells matching
// TenantCSVHeader.
func tenantCSVRow(variant string, tr TenantReport) []string {
	f := func(val float64) string { return strconv.FormatFloat(val, 'g', -1, 64) }
	u := func(val uint64) string { return strconv.FormatUint(val, 10) }
	return []string{
		variant, tr.Name, tr.Class,
		u(tr.Reads), u(tr.Writes), u(tr.FailedReads), u(tr.FailedWrites), u(tr.StaleReads),
		f(tr.Window.P50 * 1000), f(tr.Window.P95 * 1000), f(tr.Window.P99 * 1000),
		f(tr.ReadLatency.P99 * 1000), f(tr.WriteLatency.P99 * 1000),
		f(tr.Violations.Window), f(tr.Violations.ReadLatency), f(tr.Violations.WriteLatency),
		f(tr.Violations.Availability), f(tr.Violations.Total), f(tr.ComplianceRatio),
		f(tr.PenaltyCost), f(tr.CompensationCost),
		u(tr.ShedOps), f(tr.ThrottledMinutes), strconv.FormatBool(tr.Pinned),
	}
}

// WriteTenantsCSV writes the per-tenant outcome as one CSV record per
// variant×tenant, headed by TenantCSVHeader. Variants without tenants
// contribute no rows.
func (r *SuiteReport) WriteTenantsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(TenantCSVHeader()); err != nil {
		return fmt.Errorf("autonosql: writing tenant CSV header: %w", err)
	}
	for i := range r.Variants {
		v := &r.Variants[i]
		for _, tr := range v.Report.Tenants {
			if err := cw.Write(tenantCSVRow(v.Name, tr)); err != nil {
				return fmt.Errorf("autonosql: writing tenant CSV row %q/%q: %w", v.Name, tr.Name, err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the complete suite report — specs, reports and series —
// as indented JSON. ReadSuiteReportJSON restores it losslessly.
func (r *SuiteReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("autonosql: encoding suite report: %w", err)
	}
	return nil
}

// ReadSuiteReportJSON reads a suite report written by WriteJSON.
func ReadSuiteReportJSON(rd io.Reader) (*SuiteReport, error) {
	var r SuiteReport
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("autonosql: decoding suite report: %w", err)
	}
	return &r, nil
}

func msCell(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1000) }
func dollarCell(v float64) string   { return fmt.Sprintf("$%.2f", v) }
