package autonosql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"autonosql/internal/fault"
)

// FaultKind selects the class of an injected fault.
type FaultKind string

// Supported fault kinds.
const (
	// FaultNodeCrash fails nodes abruptly; they restart after the fault's
	// duration (or stay down for the rest of the run when it is zero).
	FaultNodeCrash FaultKind = "crash"
	// FaultSlowNode degrades node capacity by the fault's severity fraction,
	// modelling a straggler (degraded disk, stolen CPU).
	FaultSlowNode FaultKind = "slow"
	// FaultPartition isolates a group of nodes from the rest of the cluster;
	// the partition heals after the fault's duration. Clients still reach
	// isolated nodes, so minority-side coordinators keep acknowledging writes
	// that the majority cannot see until the heal.
	FaultPartition FaultKind = "partition"
	// FaultLatencyStorm raises network congestion to the fault's severity for
	// the fault's duration.
	FaultLatencyStorm FaultKind = "storm"
)

// FaultSpec is one declarative fault event inside a scenario.
type FaultSpec struct {
	// Kind is the fault class.
	Kind FaultKind
	// At is the virtual time the fault strikes. Faults scheduled past the
	// scenario duration never fire.
	At time.Duration
	// Duration is how long the fault lasts before it is undone (restart,
	// heal, storm end). Zero means the fault holds until the run ends.
	Duration time.Duration
	// Nodes is how many nodes are affected (crash and slow counts, partition
	// minority size). Zero means one. The injector always leaves at least one
	// node untouched.
	Nodes int
	// Severity is the fault intensity in [0, 1]: the capacity fraction lost
	// per slow node, or the congestion level of a latency storm. Crash and
	// partition faults ignore it.
	Severity float64
}

// validate reports whether the fault spec is well formed.
func (f FaultSpec) validate() error {
	switch f.Kind {
	case FaultNodeCrash, FaultSlowNode, FaultPartition, FaultLatencyStorm:
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	if f.At < 0 {
		return fmt.Errorf("fault %s strikes at negative time %v", f.Kind, f.At)
	}
	if f.Duration < 0 {
		return fmt.Errorf("fault %s has negative duration %v", f.Kind, f.Duration)
	}
	if f.Nodes < 0 {
		return fmt.Errorf("fault %s affects negative node count %d", f.Kind, f.Nodes)
	}
	// NaN fails both range comparisons and would then stick in the
	// injector's additive severity bookkeeping forever; reject it explicitly.
	if math.IsNaN(f.Severity) || f.Severity < 0 || f.Severity > 1 {
		return fmt.Errorf("fault %s severity %v outside [0, 1]", f.Kind, f.Severity)
	}
	return nil
}

// FaultPlan schedules deterministic fault events over a scenario's virtual
// time. The zero value is the fault-free plan.
type FaultPlan struct {
	// Faults are the planned events, injected independently of each other.
	Faults []FaultSpec
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool { return len(p.Faults) == 0 }

// validate reports whether every event of the plan is well formed.
func (p FaultPlan) validate() error {
	for i, f := range p.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// toInternal converts the public plan into the injection engine's form.
func (p FaultPlan) toInternal() fault.Plan {
	events := make([]fault.Event, 0, len(p.Faults))
	for _, f := range p.Faults {
		var kind fault.Kind
		switch f.Kind {
		case FaultNodeCrash:
			kind = fault.KindCrash
		case FaultSlowNode:
			kind = fault.KindSlow
		case FaultPartition:
			kind = fault.KindPartition
		case FaultLatencyStorm:
			kind = fault.KindStorm
		default:
			continue
		}
		events = append(events, fault.Event{
			Kind:     kind,
			At:       f.At,
			Duration: f.Duration,
			Nodes:    f.Nodes,
			Severity: f.Severity,
		})
	}
	return fault.Plan{Events: events}
}

// CrashFault plans nodes crashing at the given time and restarting after
// down (zero keeps them down for the rest of the run).
func CrashFault(at, down time.Duration, nodes int) FaultSpec {
	return FaultSpec{Kind: FaultNodeCrash, At: at, Duration: down, Nodes: nodes}
}

// SlowNodeFault plans nodes losing the severity fraction of their capacity
// between at and at+duration.
func SlowNodeFault(at, duration time.Duration, nodes int, severity float64) FaultSpec {
	return FaultSpec{Kind: FaultSlowNode, At: at, Duration: duration, Nodes: nodes, Severity: severity}
}

// PartitionFault plans a minority group of the given size being isolated
// from the rest of the cluster between at and at+heal.
func PartitionFault(at, heal time.Duration, minority int) FaultSpec {
	return FaultSpec{Kind: FaultPartition, At: at, Duration: heal, Nodes: minority}
}

// LatencyStormFault plans network congestion rising to level between at and
// at+duration.
func LatencyStormFault(at, duration time.Duration, level float64) FaultSpec {
	return FaultSpec{Kind: FaultLatencyStorm, At: at, Duration: duration, Severity: level}
}

// ParseFaultPlan parses a comma-separated fault plan DSL, one event per
// element:
//
//	kind:start:duration[:n=N][:sev=S]
//
// where kind is crash, slow, partition or storm and start/duration use Go
// duration syntax. Examples:
//
//	crash:30s:60s              one node crashes at 30s, restarts at 90s
//	partition:1m:45s:n=2       two nodes isolated at 1m, healed at 1m45s
//	slow:20s:40s:n=2:sev=0.5   two nodes lose half their capacity
//	storm:10s:30s:sev=0.8      congestion 0.8 between 10s and 40s
//
// An empty string parses to the empty (fault-free) plan. Every plan the
// parser accepts passes ScenarioSpec validation.
func ParseFaultPlan(s string) (FaultPlan, error) {
	var plan FaultPlan
	s = strings.TrimSpace(s)
	if s == "" {
		return plan, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := parseFaultSpec(part)
		if err != nil {
			return FaultPlan{}, fmt.Errorf("autonosql: fault %q: %w", part, err)
		}
		plan.Faults = append(plan.Faults, spec)
	}
	return plan, nil
}

func parseFaultSpec(s string) (FaultSpec, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 3 {
		return FaultSpec{}, fmt.Errorf("want kind:start:duration, got %d fields", len(fields))
	}
	spec := FaultSpec{Kind: FaultKind(strings.ToLower(strings.TrimSpace(fields[0])))}
	at, err := time.ParseDuration(strings.TrimSpace(fields[1]))
	if err != nil {
		return FaultSpec{}, fmt.Errorf("start: %w", err)
	}
	spec.At = at
	dur, err := time.ParseDuration(strings.TrimSpace(fields[2]))
	if err != nil {
		return FaultSpec{}, fmt.Errorf("duration: %w", err)
	}
	spec.Duration = dur
	for _, opt := range fields[3:] {
		opt = strings.TrimSpace(opt)
		switch {
		case strings.HasPrefix(opt, "n="):
			n, err := strconv.Atoi(opt[2:])
			if err != nil {
				return FaultSpec{}, fmt.Errorf("node count %q: %w", opt, err)
			}
			spec.Nodes = n
		case strings.HasPrefix(opt, "sev="):
			sev, err := strconv.ParseFloat(opt[4:], 64)
			if err != nil {
				return FaultSpec{}, fmt.Errorf("severity %q: %w", opt, err)
			}
			spec.Severity = sev
		default:
			return FaultSpec{}, fmt.Errorf("unknown option %q (want n=N or sev=S)", opt)
		}
	}
	if err := spec.validate(); err != nil {
		return FaultSpec{}, err
	}
	return spec, nil
}

// FaultProfile is a named fault plan used as a suite axis, analogous to
// SLATier on the SLA axis.
type FaultProfile struct {
	// Name identifies the profile in variant names and report rows.
	Name string
	// Plan is the fault plan applied to variants on this profile.
	Plan FaultPlan
}

// DefaultFaultProfiles returns the canonical named fault plans the suite
// runner and CLI expose, scaled to a run duration d: none (fault-free),
// crash (one node down from d/4 to d/2), partition (two-node minority cut
// off from d/4 to d/2), slow (one node at 40% capacity from d/4 to 3d/4) and
// storm (congestion 0.7 from d/4 to d/2).
func DefaultFaultProfiles(d time.Duration) []FaultProfile {
	q := d / 4
	return []FaultProfile{
		{Name: "none"},
		{Name: "crash", Plan: FaultPlan{Faults: []FaultSpec{CrashFault(q, q, 1)}}},
		{Name: "partition", Plan: FaultPlan{Faults: []FaultSpec{PartitionFault(q, q, 2)}}},
		{Name: "slow", Plan: FaultPlan{Faults: []FaultSpec{SlowNodeFault(q, 2*q, 1, 0.6)}}},
		{Name: "storm", Plan: FaultPlan{Faults: []FaultSpec{LatencyStormFault(q, q, 0.7)}}},
	}
}

// LookupFaultProfile returns the default profile with the given name, scaled
// to run duration d.
func LookupFaultProfile(name string, d time.Duration) (FaultProfile, bool) {
	for _, p := range DefaultFaultProfiles(d) {
		if p.Name == name {
			return p, true
		}
	}
	return FaultProfile{}, false
}
