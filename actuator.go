package autonosql

import (
	"errors"
	"fmt"

	"autonosql/internal/cluster"
	"autonosql/internal/core"
	"autonosql/internal/store"
	"autonosql/internal/tenant"
)

// tenantActuator is the scoped-action execution surface of a multi-tenant
// scenario: it extends the core system actuator (cluster size, replication,
// consistency) with tenant-scoped admission control — executed against the
// tenant runtimes' token buckets — and class-scoped placement, executed
// against the store's class-aware replica selection. It is what makes the
// MAPE execute stage able to act on the tenant that triggered an adaptation
// instead of only on cluster-global knobs.
type tenantActuator struct {
	*core.SystemActuator
	scenario *Scenario
}

var (
	_ core.Actuator       = (*tenantActuator)(nil)
	_ core.TenantActuator = (*tenantActuator)(nil)
)

// runtime resolves a tenant name to its runtime.
func (a *tenantActuator) runtime(name string) (*tenant.Runtime, error) {
	for _, rt := range a.scenario.tenantRuntimes {
		if rt.Name() == name {
			return rt, nil
		}
	}
	return nil, fmt.Errorf("autonosql: unknown tenant %q", name)
}

// ThrottleTenant implements core.TenantActuator: the named tenant's token
// bucket is engaged (or re-rated) at opsPerSec.
func (a *tenantActuator) ThrottleTenant(name string, opsPerSec float64) error {
	rt, err := a.runtime(name)
	if err != nil {
		return err
	}
	return rt.Throttle(opsPerSec)
}

// UnthrottleTenant implements core.TenantActuator.
func (a *tenantActuator) UnthrottleTenant(name string) error {
	rt, err := a.runtime(name)
	if err != nil {
		return err
	}
	return rt.Unthrottle()
}

// ThrottledRate implements core.TenantActuator.
func (a *tenantActuator) ThrottledRate(name string) (float64, bool) {
	rt, err := a.runtime(name)
	if err != nil {
		return 0, false
	}
	return rt.Throttled()
}

// PinClass implements core.TenantActuator: up to RF of the oldest serving
// nodes are dedicated to the class (oldest because scale-in removes newest
// first, so the dedicated pool survives later capacity changes), at least
// one shared node is always left for everyone else, and the store starts
// serving the class's tenants from the dedicated pool.
func (a *tenantActuator) PinClass(class string) error {
	if class == "" {
		return errors.New("autonosql: placement class is required")
	}
	var ids []store.TenantID
	for i, rt := range a.scenario.tenantRuntimes {
		if string(rt.Class().Class) == class {
			ids = append(ids, store.TenantID(i+1))
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("autonosql: no tenant of class %q", class)
	}
	// Only fully-up, still-shared nodes are eligible: a draining node would
	// leave the placement pool silently one node short once its decommission
	// finishes (its departure listener has already fired), a joining node
	// cannot serve yet, and a node another class already holds must not be
	// displaced — pinning a second class carves its pool out of the shared
	// remainder.
	var up []*cluster.Node
	for _, n := range a.scenario.cluster.AvailableNodes() {
		if n.State() == cluster.NodeUp && n.Class() == "" {
			up = append(up, n)
		}
	}
	count := a.scenario.store.ReplicationFactor()
	if count > len(up)-1 {
		count = len(up) - 1
	}
	if count < 1 {
		return errors.New("autonosql: cluster too small to dedicate nodes")
	}
	dedicated := make([]cluster.NodeID, 0, count)
	for _, n := range up[:count] {
		dedicated = append(dedicated, n.ID())
	}
	return a.scenario.store.PinClass(class, ids, dedicated)
}

// UnpinClass implements core.TenantActuator.
func (a *tenantActuator) UnpinClass() error {
	return a.scenario.store.UnpinClass()
}

// PinnedClass implements core.TenantActuator.
func (a *tenantActuator) PinnedClass() string {
	return a.scenario.store.PinnedClass()
}
