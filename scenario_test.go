package autonosql

import (
	"strings"
	"testing"
	"time"
)

// quickSpec returns a scenario small enough for unit tests: 90 simulated
// seconds of moderate load on three nodes.
func quickSpec() ScenarioSpec {
	spec := DefaultScenarioSpec()
	spec.Duration = 90 * time.Second
	spec.SampleInterval = 5 * time.Second
	spec.Workload.BaseOpsPerSec = 1200
	spec.Workload.Keyspace = 2000
	spec.Controller.Mode = ControllerNone
	spec.Controller.ControlInterval = 5 * time.Second
	return spec
}

func runScenario(t *testing.T, spec ScenarioSpec) *Report {
	t.Helper()
	sc, err := NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	rep, err := sc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestScenarioRunProducesReport(t *testing.T) {
	rep := runScenario(t, quickSpec())

	if rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("no traffic recorded: %d reads, %d writes", rep.Reads, rep.Writes)
	}
	if rep.Window.P95 <= 0 {
		t.Fatal("ground-truth window p95 is zero; the store recorded no windows")
	}
	if rep.Window.P50 > rep.Window.P95 || rep.Window.P95 > rep.Window.Max {
		t.Fatalf("window percentiles not ordered: %+v", rep.Window)
	}
	if rep.ReadLatency.P99 <= 0 || rep.WriteLatency.P99 <= 0 {
		t.Fatal("latency percentiles are zero")
	}
	if rep.EstimatedWindowP95 <= 0 {
		t.Fatal("monitor produced no window estimate")
	}
	if rep.Cost.Total <= 0 || rep.Cost.NodeHours <= 0 {
		t.Fatalf("cost not accounted: %+v", rep.Cost)
	}
	if rep.ComplianceRatio < 0 || rep.ComplianceRatio > 1 {
		t.Fatalf("compliance ratio out of range: %v", rep.ComplianceRatio)
	}
	if rep.FinalConfiguration.ClusterSize != 3 || rep.FinalConfiguration.ReplicationFactor != 3 {
		t.Fatalf("unexpected final configuration %+v", rep.FinalConfiguration)
	}
	if rep.Reconfigurations != 0 || len(rep.Decisions) != 0 {
		t.Fatal("ControllerNone must not reconfigure anything")
	}

	for _, name := range []string{SeriesWindowP95, SeriesOfferedLoad, SeriesClusterSize, SeriesUtilization} {
		pts := rep.Series[name]
		if len(pts) < 10 {
			t.Errorf("series %s has only %d points", name, len(pts))
		}
	}
	text := rep.String()
	for _, want := range []string{"inconsistency window", "SLA", "cost", "configuration"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
	if plot := rep.PlotSeries(SeriesWindowP95, 40); !strings.Contains(plot, SeriesWindowP95) {
		t.Error("PlotSeries produced no output for a populated series")
	}
	if plot := rep.PlotSeries("no-such-series", 40); plot != "" {
		t.Error("PlotSeries should return empty output for unknown series")
	}
}

func TestScenarioIsDeterministic(t *testing.T) {
	spec := quickSpec()
	spec.Duration = 45 * time.Second
	a := runScenario(t, spec)
	b := runScenario(t, spec)
	if a.Reads != b.Reads || a.Writes != b.Writes || a.StaleReads != b.StaleReads {
		t.Fatalf("same seed produced different traffic: %d/%d/%d vs %d/%d/%d",
			a.Reads, a.Writes, a.StaleReads, b.Reads, b.Writes, b.StaleReads)
	}
	if a.Window.P95 != b.Window.P95 || a.Cost.Total != b.Cost.Total {
		t.Fatalf("same seed produced different outcomes: window %v vs %v, cost %v vs %v",
			a.Window.P95, b.Window.P95, a.Cost.Total, b.Cost.Total)
	}

	spec.Seed = 999
	c := runScenario(t, spec)
	if c.Reads == a.Reads && c.Window.P95 == a.Window.P95 {
		t.Fatal("different seeds produced identical runs; randomness is not wired to the seed")
	}
}

func TestScenarioRunOnlyOnce(t *testing.T) {
	sc, err := NewScenario(quickSpec())
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	if _, err := sc.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestScenarioInterventions(t *testing.T) {
	spec := quickSpec()
	spec.Workload.BaseOpsPerSec = 800
	sc, err := NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}

	var before, after ConsistencyLevel
	var failErr, recoverErr error
	sc.At(20*time.Second, func(h *Handle) {
		before = h.WriteConsistency()
		if err := h.SetWriteConsistency(ConsistencyQuorum); err != nil {
			t.Errorf("SetWriteConsistency: %v", err)
		}
		after = h.WriteConsistency()
	})
	sc.At(30*time.Second, func(h *Handle) {
		failErr = h.FailNode(0)
	})
	sc.At(50*time.Second, func(h *Handle) {
		recoverErr = h.RecoverNode()
		h.SetNetworkCongestion(0.4)
		h.SetBackgroundLoad(0.3)
	})
	sc.At(70*time.Second, func(h *Handle) {
		if h.Now() < 70*time.Second {
			t.Error("hook ran before its scheduled time")
		}
		if h.TrueWindowP95() < 0 || h.EstimatedWindowP95() < 0 {
			t.Error("window accessors returned negative values")
		}
		if h.ClusterSize() <= 0 || h.ReplicationFactor() <= 0 {
			t.Error("handle reports empty cluster")
		}
	})

	rep, err := sc.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if before != ConsistencyOne || after != ConsistencyQuorum {
		t.Fatalf("consistency change not visible through the handle: before=%s after=%s", before, after)
	}
	if failErr != nil || recoverErr != nil {
		t.Fatalf("fault injection failed: fail=%v recover=%v", failErr, recoverErr)
	}
	if rep.FinalConfiguration.WriteConsistency != ConsistencyQuorum {
		t.Fatalf("final write consistency = %s, want QUORUM", rep.FinalConfiguration.WriteConsistency)
	}
}

func TestScenarioHandleErrors(t *testing.T) {
	spec := quickSpec()
	spec.Duration = 30 * time.Second
	sc, err := NewScenario(spec)
	if err != nil {
		t.Fatalf("NewScenario: %v", err)
	}
	sc.At(5*time.Second, func(h *Handle) {
		if err := h.SetWriteConsistency("BOGUS"); err == nil {
			t.Error("invalid consistency level accepted")
		}
		if err := h.SetReadConsistency("BOGUS"); err == nil {
			t.Error("invalid consistency level accepted")
		}
		if err := h.FailNode(99); err == nil {
			t.Error("failing a non-existent node succeeded")
		}
		if err := h.RecoverNode(); err == nil {
			t.Error("recovering with no failed node succeeded")
		}
		if err := h.SetReplicationFactor(0); err == nil {
			t.Error("zero replication factor accepted")
		}
	})
	if _, err := sc.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestScenarioSmartControllerActsOnStressedSystem(t *testing.T) {
	// Two small nodes, write-heavy load near saturation and a tight window
	// SLA: the smart controller must reconfigure (tighten consistency and/or
	// add nodes), and the report must carry its decisions.
	spec := DefaultScenarioSpec()
	spec.Duration = 4 * time.Minute
	spec.SampleInterval = 5 * time.Second
	spec.Cluster.InitialNodes = 2
	spec.Cluster.MinNodes = 2
	spec.Cluster.NodeOpsPerSec = 2500
	spec.Cluster.BootstrapTime = 30 * time.Second
	spec.Workload.BaseOpsPerSec = 3500
	spec.Workload.ReadFraction = 0.3
	spec.Workload.Keyspace = 2000
	spec.SLA.MaxWindowP95 = 40 * time.Millisecond
	spec.Controller.Mode = ControllerSmart
	spec.Controller.ControlInterval = 10 * time.Second

	rep := runScenario(t, spec)
	if rep.Reconfigurations == 0 {
		t.Fatal("smart controller never acted on a stressed system")
	}
	if len(rep.Decisions) == 0 {
		t.Fatal("no decisions recorded in the report")
	}
	if rep.MaxClusterSize < rep.MinClusterSize {
		t.Fatalf("cluster size bookkeeping broken: min=%d max=%d", rep.MinClusterSize, rep.MaxClusterSize)
	}
}

func TestScenarioReactiveControllerScalesOnCPU(t *testing.T) {
	spec := DefaultScenarioSpec()
	spec.Duration = 4 * time.Minute
	spec.SampleInterval = 10 * time.Second
	spec.Cluster.InitialNodes = 2
	spec.Cluster.MinNodes = 2
	spec.Cluster.NodeOpsPerSec = 2000
	spec.Cluster.BootstrapTime = 30 * time.Second
	spec.Workload.BaseOpsPerSec = 3600
	spec.Workload.Keyspace = 2000
	spec.Controller.Mode = ControllerReactive
	spec.Controller.ControlInterval = 10 * time.Second

	rep := runScenario(t, spec)
	if rep.Reconfigurations == 0 {
		t.Fatal("reactive autoscaler never scaled an overloaded cluster")
	}
	if rep.MaxClusterSize <= 2 {
		t.Fatalf("cluster never grew: max size %d", rep.MaxClusterSize)
	}
}

func TestScenarioNoisyNeighbourWidensWindow(t *testing.T) {
	quiet := quickSpec()
	quiet.Duration = 2 * time.Minute
	quiet.Workload.BaseOpsPerSec = 2500
	noisy := quiet
	noisy.Cluster.NoisyNeighbour = true

	repQuiet := runScenario(t, quiet)
	repNoisy := runScenario(t, noisy)
	if repNoisy.Window.P95 <= repQuiet.Window.P95 {
		t.Fatalf("noisy-neighbour interference should widen the window: quiet p95=%v noisy p95=%v",
			repQuiet.Window.P95, repNoisy.Window.P95)
	}
}
