package autonosql

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// fpFloat renders a float64 so that any bit-level change is visible.
func fpFloat(v float64) string {
	return fmt.Sprintf("%#016x", math.Float64bits(v))
}

func fpLatency(b *strings.Builder, name string, l LatencySummary) {
	fmt.Fprintf(b, "%s: mean=%s p50=%s p95=%s p99=%s max=%s\n",
		name, fpFloat(l.Mean), fpFloat(l.P50), fpFloat(l.P95), fpFloat(l.P99), fpFloat(l.Max))
}

// Fingerprint folds every number the report carries into a readable,
// line-oriented digest: every float is rendered via math.Float64bits, so even
// a 1-ULP drift in any statistic changes the output. Time series are folded
// into a running FNV-style mix of their exact float bits so the fingerprint
// stays small. Two runs are bit-for-bit identical exactly when their
// fingerprints are equal — the golden-report determinism tests, the replay
// byte-identity test and the adversarial regression corpus all compare runs
// this way.
func (r *Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops: reads=%d writes=%d failedReads=%d failedWrites=%d stale=%d staleRate=%s\n",
		r.Reads, r.Writes, r.FailedReads, r.FailedWrites, r.StaleReads, fpFloat(r.StaleReadRate))
	fpLatency(&b, "window", r.Window)
	fmt.Fprintf(&b, "windowEstimateP95=%s\n", fpFloat(r.EstimatedWindowP95))
	fpLatency(&b, "readLatency", r.ReadLatency)
	fpLatency(&b, "writeLatency", r.WriteLatency)
	fmt.Fprintf(&b, "monitoring: probeOps=%d overhead=%s\n",
		r.MonitoringProbeOps, fpFloat(r.MonitoringOverheadFraction))
	fmt.Fprintf(&b, "sla: compliance=%s vWindow=%s vRead=%s vWrite=%s vAvail=%s vTotal=%s\n",
		fpFloat(r.ComplianceRatio), fpFloat(r.Violations.Window), fpFloat(r.Violations.ReadLatency),
		fpFloat(r.Violations.WriteLatency), fpFloat(r.Violations.Availability), fpFloat(r.Violations.Total))
	fmt.Fprintf(&b, "cost: nodeHours=%s infra=%s comp=%s penalty=%s total=%s\n",
		fpFloat(r.Cost.NodeHours), fpFloat(r.Cost.Infrastructure), fpFloat(r.Cost.Compensation),
		fpFloat(r.Cost.Penalty), fpFloat(r.Cost.Total))
	fmt.Fprintf(&b, "config: nodes=%d rf=%d rcl=%s wcl=%s min=%d max=%d reconfigs=%d decisions=%d\n",
		r.FinalConfiguration.ClusterSize, r.FinalConfiguration.ReplicationFactor,
		r.FinalConfiguration.ReadConsistency, r.FinalConfiguration.WriteConsistency,
		r.MinClusterSize, r.MaxClusterSize, r.Reconfigurations, len(r.Decisions))

	// Fault windows (absent for fault-free runs, so the pre-fault golden
	// files are unaffected): every statistic buildFaultWindows derives is
	// pinned bit-for-bit, not just the window count.
	for _, fw := range r.Faults {
		fmt.Fprintf(&b, "fault %s %v..%v nodes=%v sev=%s samples=%d mean=%s peak=%s viol=%s\n",
			fw.Kind, fw.Start, fw.End, fw.Nodes, fpFloat(fw.Severity), fw.Samples,
			fpFloat(fw.WindowP95Mean), fpFloat(fw.WindowP95Peak), fpFloat(fw.SLAViolationFraction))
	}

	// Tenant sections (absent for single-tenant runs, so the pre-tenant
	// golden files are unaffected): every per-tenant statistic is pinned
	// bit-for-bit. Admission / placement / delay lines appear only for
	// treated tenants, so pre-admission golden files are unaffected too.
	for _, tr := range r.Tenants {
		fmt.Fprintf(&b, "tenant %s class=%s ops: reads=%d writes=%d failedReads=%d failedWrites=%d stale=%d staleRate=%s\n",
			tr.Name, tr.Class, tr.Reads, tr.Writes, tr.FailedReads, tr.FailedWrites,
			tr.StaleReads, fpFloat(tr.StaleReadRate))
		fpLatency(&b, "tenant "+tr.Name+" window", tr.Window)
		fpLatency(&b, "tenant "+tr.Name+" readLatency", tr.ReadLatency)
		fpLatency(&b, "tenant "+tr.Name+" writeLatency", tr.WriteLatency)
		fmt.Fprintf(&b, "tenant %s sla: compliance=%s vWindow=%s vRead=%s vWrite=%s vAvail=%s vTotal=%s penalty=%s comp=%s\n",
			tr.Name, fpFloat(tr.ComplianceRatio), fpFloat(tr.Violations.Window),
			fpFloat(tr.Violations.ReadLatency), fpFloat(tr.Violations.WriteLatency),
			fpFloat(tr.Violations.Availability), fpFloat(tr.Violations.Total),
			fpFloat(tr.PenaltyCost), fpFloat(tr.CompensationCost))
		if tr.ShedOps > 0 || len(tr.Throttles) > 0 || tr.Pinned {
			fmt.Fprintf(&b, "tenant %s admission: shed=%d throttledMin=%s pinned=%v\n",
				tr.Name, tr.ShedOps, fpFloat(tr.ThrottledMinutes), tr.Pinned)
			for _, tw := range tr.Throttles {
				fmt.Fprintf(&b, "tenant %s throttle %v..%v rate=%s\n",
					tr.Name, tw.Start, tw.End, fpFloat(tw.Rate))
			}
		}
		if tr.DelayedOps > 0 || tr.MaxQueueDepth > 0 {
			fmt.Fprintf(&b, "tenant %s delay: delayed=%d maxQueue=%d endQueue=%d\n",
				tr.Name, tr.DelayedOps, tr.MaxQueueDepth, tr.QueueDepth)
		}
	}

	names := make([]string, 0, len(r.Series))
	for name := range r.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pts := r.Series[name]
		mix := uint64(1469598103934665603)
		for _, p := range pts {
			mix = (mix ^ uint64(p.At)) * 1099511628211
			mix = (mix ^ math.Float64bits(p.Value)) * 1099511628211
		}
		fmt.Fprintf(&b, "series %s: n=%d mix=%#016x\n", name, len(pts), mix)
	}
	return b.String()
}
