package autonosql

import (
	"errors"
	"fmt"
	"time"

	"autonosql/internal/cluster"
)

// Handle is the view of a running scenario passed to interventions registered
// with Scenario.At. It exposes the same reconfiguration surface the
// autonomous controller uses, plus fault and interference injection, so
// experiments and examples can manipulate the live system mid-run.
type Handle struct {
	scenario *Scenario
}

// Now returns the current virtual time.
func (h *Handle) Now() time.Duration { return h.scenario.engine.Now() }

// ClusterSize returns the number of nodes currently able to serve requests.
func (h *Handle) ClusterSize() int { return h.scenario.cluster.Size() }

// ReplicationFactor returns the store's current replication factor.
func (h *Handle) ReplicationFactor() int { return h.scenario.store.ReplicationFactor() }

// WriteConsistency returns the store's current write consistency level.
func (h *Handle) WriteConsistency() ConsistencyLevel {
	return consistencyFromStore(h.scenario.store.WriteConsistency())
}

// ReadConsistency returns the store's current read consistency level.
func (h *Handle) ReadConsistency() ConsistencyLevel {
	return consistencyFromStore(h.scenario.store.ReadConsistency())
}

// SetWriteConsistency changes the write consistency level of subsequent
// writes.
func (h *Handle) SetWriteConsistency(cl ConsistencyLevel) error {
	level, err := cl.toStore()
	if err != nil {
		return err
	}
	h.scenario.store.SetWriteConsistency(level)
	return nil
}

// SetReadConsistency changes the read consistency level of subsequent reads.
func (h *Handle) SetReadConsistency(cl ConsistencyLevel) error {
	level, err := cl.toStore()
	if err != nil {
		return err
	}
	h.scenario.store.SetReadConsistency(level)
	return nil
}

// SetReplicationFactor changes the replication factor of subsequent writes.
func (h *Handle) SetReplicationFactor(rf int) error {
	return h.scenario.store.SetReplicationFactor(rf)
}

// AddNode provisions one extra node; it becomes available after the
// cluster's bootstrap time.
func (h *Handle) AddNode() error {
	_, err := h.scenario.cluster.AddNode()
	return err
}

// RemoveNode decommissions the newest fully-up node.
func (h *Handle) RemoveNode() error {
	nodes := h.scenario.cluster.Nodes()
	for i := len(nodes) - 1; i >= 0; i-- {
		if nodes[i].State() == cluster.NodeUp {
			return h.scenario.cluster.RemoveNode(nodes[i].ID())
		}
	}
	return errors.New("autonosql: no removable node")
}

// FailNode crashes the node with the given ordinal (0 = oldest serving node).
// The node keeps its ring position and can be recovered with RecoverNode.
func (h *Handle) FailNode(ordinal int) error {
	nodes := h.scenario.cluster.AvailableNodes()
	if ordinal < 0 || ordinal >= len(nodes) {
		return fmt.Errorf("autonosql: no serving node with ordinal %d", ordinal)
	}
	return h.scenario.cluster.FailNode(nodes[ordinal].ID())
}

// RecoverNode brings the most recently failed node back up. It returns an
// error when no node is down.
func (h *Handle) RecoverNode() error {
	for _, n := range h.scenario.cluster.Nodes() {
		if n.State() == cluster.NodeDown {
			return h.scenario.cluster.RecoverNode(n.ID())
		}
	}
	return errors.New("autonosql: no failed node to recover")
}

// SetNetworkCongestion sets the externally imposed network congestion level
// in [0, 1], modelling congestion caused by other tenants or by a partial
// network fault.
func (h *Handle) SetNetworkCongestion(level float64) {
	h.scenario.cluster.Network().SetCongestion(level)
}

// Partition isolates the given serving nodes (by ordinal, 0 = oldest) from
// the rest of the cluster: node-to-node traffic across the cut is
// undeliverable until HealPartition, while clients still reach both sides.
func (h *Handle) Partition(ordinals ...int) error {
	nodes := h.scenario.cluster.AvailableNodes()
	net := h.scenario.cluster.Network()
	seen := make(map[int]bool, len(ordinals))
	ids := make([]cluster.NodeID, 0, len(ordinals))
	newlyIsolated := 0
	for _, ord := range ordinals {
		if ord < 0 || ord >= len(nodes) {
			return fmt.Errorf("autonosql: no serving node with ordinal %d", ord)
		}
		if seen[ord] {
			continue
		}
		seen[ord] = true
		id := nodes[ord].ID()
		if !net.Isolated(id) {
			newlyIsolated++
		}
		ids = append(ids, id)
	}
	// Count what the cut would look like after this call, including serving
	// nodes isolated by earlier calls or faults: at least one connected
	// serving node must remain, or the "partition" is a silent global repair
	// freeze. Only serving nodes count on either side — a crashed node that
	// is also isolated is already outside the denominator.
	isolatedServing := 0
	for _, n := range nodes {
		if net.Isolated(n.ID()) {
			isolatedServing++
		}
	}
	if isolatedServing+newlyIsolated >= len(nodes) {
		return errors.New("autonosql: cannot isolate every node")
	}
	net.Isolate(ids)
	return nil
}

// HealPartition reconnects every currently isolated node, whatever isolated
// it.
func (h *Handle) HealPartition() {
	h.scenario.cluster.Network().ClearPartition()
}

// SetBackgroundLoad sets the noisy-neighbour CPU load fraction in [0, 0.95]
// on every node.
func (h *Handle) SetBackgroundLoad(fraction float64) {
	h.scenario.cluster.SetBackgroundLoad(fraction)
}

// ThrottleTenant engages (or re-rates) admission control on the named
// tenant: arrivals beyond opsPerSec are shed before they reach the store,
// counted as rejections in the tenant's ground truth. It fails in a
// single-tenant scenario.
func (h *Handle) ThrottleTenant(name string, opsPerSec float64) error {
	if h.scenario.tenantAct == nil {
		return errors.New("autonosql: scenario has no tenants")
	}
	return h.scenario.tenantAct.ThrottleTenant(name, opsPerSec)
}

// UnthrottleTenant removes admission control from the named tenant.
func (h *Handle) UnthrottleTenant(name string) error {
	if h.scenario.tenantAct == nil {
		return errors.New("autonosql: scenario has no tenants")
	}
	return h.scenario.tenantAct.UnthrottleTenant(name)
}

// PinClass dedicates nodes to the named SLA class: the class's tenants place
// replica sets and coordinators on the dedicated pool, everyone else prefers
// the remainder. It fails in a single-tenant scenario.
func (h *Handle) PinClass(class string) error {
	if h.scenario.tenantAct == nil {
		return errors.New("autonosql: scenario has no tenants")
	}
	return h.scenario.tenantAct.PinClass(class)
}

// UnpinClass releases the pinned class's dedicated nodes.
func (h *Handle) UnpinClass() error {
	if h.scenario.tenantAct == nil {
		return errors.New("autonosql: scenario has no tenants")
	}
	return h.scenario.tenantAct.UnpinClass()
}

// PinnedClass returns the SLA class currently holding dedicated nodes, or "".
func (h *Handle) PinnedClass() string {
	return h.scenario.store.PinnedClass()
}

// TrueWindowP95 returns the ground-truth 95th-percentile inconsistency window
// (seconds) over recent writes. Experiments use it; the controller never
// sees it.
func (h *Handle) TrueWindowP95() float64 {
	return h.scenario.store.RecentWindowQuantile(0.95)
}

// EstimatedWindowP95 returns the monitor's current 95th-percentile window
// estimate in seconds.
func (h *Handle) EstimatedWindowP95() float64 {
	return h.scenario.monitor.WindowQuantile(0.95)
}
