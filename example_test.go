package autonosql_test

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

// ExampleNewScenario runs a single fixed-seed scenario: a three-node
// eventually-consistent store under constant load, with no controller, for
// ten seconds of virtual time. Fixed seeds make runs bit-for-bit
// reproducible, so the printed operation counts are stable across machines
// and releases (the golden-report tests pin the same property).
func ExampleNewScenario() {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = 42
	spec.Duration = 10 * time.Second
	spec.Workload.BaseOpsPerSec = 1000
	spec.Controller.Mode = autonosql.ControllerNone

	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatal(err)
	}
	report, err := scenario.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %v: %d reads, %d writes, rf=%d\n",
		report.Duration, report.Reads, report.Writes,
		report.FinalConfiguration.ReplicationFactor)
	// Output:
	// simulated 10s: 4995 reads, 4960 writes, rf=3
}

// ExampleNewSuite expands a small grid over a base scenario — here the
// controller axis — and runs every variant concurrently. Each variant gets a
// deterministic seed derived from the base seed and its name, so the suite
// report is identical whatever the parallelism.
func ExampleNewSuite() {
	base := autonosql.DefaultScenarioSpec()
	base.Seed = 42
	base.Duration = 10 * time.Second
	base.Workload.BaseOpsPerSec = 1000

	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{
				autonosql.ControllerNone,
				autonosql.ControllerReactive,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := suite.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range report.Variants {
		fmt.Printf("%s: %d ops\n", v.Name, v.Report.Reads+v.Report.Writes)
	}
	// Output:
	// ctl=none: 10052 ops
	// ctl=reactive: 10004 ops
}
