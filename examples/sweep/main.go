// Sweep: expand a parameter grid — three load patterns × two controllers ×
// two cluster sizes — into twelve scenario variants with deterministic
// per-variant seeds, run them concurrently through the suite runner and
// compare the outcomes: which combinations hold the SLA, and what each one
// costs. The grid is the programmatic equivalent of cmd/suiterunner.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"autonosql"
)

func main() {
	base := autonosql.DefaultScenarioSpec()
	base.Duration = 4 * time.Minute
	base.Cluster.NodeOpsPerSec = 2000
	base.Cluster.MaxNodes = 10
	base.Workload.BaseOpsPerSec = 1500
	base.Workload.PeakOpsPerSec = 3500
	base.SLA.MaxWindowP95 = 150 * time.Millisecond

	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Patterns:     []autonosql.LoadPattern{autonosql.LoadConstant, autonosql.LoadDiurnal, autonosql.LoadSpike},
			Controllers:  []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
			ClusterSizes: []int{3, 6},
		},
	})
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}

	fmt.Printf("running %d variants...\n\n", len(suite.Variants()))
	report, err := suite.Run()
	if err != nil {
		log.Fatalf("running suite: %v", err)
	}

	fmt.Print(report.ComparisonTable())
	fmt.Println()
	fmt.Print(report.CostTable())

	if best := report.CheapestCompliant(0); best != nil {
		fmt.Printf("\ncheapest fully compliant variant: %s ($%.2f)\n", best.Name, best.Report.Cost.Total)
	}

	// The per-variant outcomes round-trip through CSV (and the full report,
	// time series included, through JSON), so sweeps can be archived and
	// re-analysed later.
	fmt.Println()
	if err := report.WriteCSV(os.Stdout); err != nil {
		log.Fatalf("exporting results: %v", err)
	}
}
