// Admission control vs. scale-out: the same bronze flash crowd, handled two
// ways. A premium (gold) checkout service shares a four-node cluster with a
// best-effort (bronze) batch job whose write-heavy burst saturates the
// replicas mid-run. PR 4's tenant-aware controller could only protect gold by
// scaling the whole cluster for the noisy neighbour — paying for nodes whose
// only job is to absorb best-effort traffic.
//
// With scoped actions the controller has a cheaper move: throttle the tenant
// that causes the pressure. The admission run shows the planner shedding the
// batch tenant's excess arrivals through a per-tenant token bucket the moment
// gold comes under pressure — before reaching for capacity — then releasing
// the throttle once the burst passes. Gold's SLA holds through the burst, the
// cluster size never changes, and the report shows exactly when the batch
// tenant was throttled and how many of its operations were shed.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func spec(admission bool) autonosql.ScenarioSpec {
	s := autonosql.DefaultScenarioSpec()
	s.Duration = 16 * time.Minute
	s.SampleInterval = 10 * time.Second
	s.Cluster.InitialNodes = 4
	s.Cluster.MaxNodes = 10
	s.Cluster.NodeOpsPerSec = 2000
	s.Cluster.BootstrapTime = 20 * time.Second
	s.Controller.Mode = autonosql.ControllerSmart
	// Purely reactive in both runs, so the only difference between them is
	// whether the planner may throttle instead of scale.
	s.Controller.Predictive = false
	s.Controller.Admission = autonosql.AdmissionSpec{Enabled: admission}
	s.Tenants = []autonosql.TenantSpec{
		{
			// The premium service: steady daytime traffic, strict window SLA.
			Name:  "checkout",
			Class: autonosql.SLAGold,
			Workload: autonosql.WorkloadSpec{
				Pattern:       autonosql.LoadDiurnal,
				BaseOpsPerSec: 800,
				PeakOpsPerSec: 1300,
				ReadFraction:  0.7,
			},
		},
		{
			// The noisy neighbour: a write-heavy batch job that ramps to three
			// and a half times its base rate for five minutes mid-run.
			Name:  "batch",
			Class: autonosql.SLABronze,
			Workload: autonosql.WorkloadSpec{
				Pattern:       autonosql.LoadSpike,
				BaseOpsPerSec: 400,
				PeakOpsPerSec: 1400,
				ReadFraction:  0.2,
				PeakStart:     6 * time.Minute,
				PeakDuration:  5 * time.Minute,
			},
		},
	}
	return s
}

func run(name string, s autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(s)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	rep, err := scenario.Run()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	scale := run("scale-out", spec(false))
	throttle := run("throttle", spec(true))

	fmt.Println("same bronze flash crowd, two answers: scale the cluster vs. throttle the tenant")
	fmt.Printf("%-10s %-10s %-8s %-17s %-15s %-13s %-12s %s\n",
		"run", "tenant", "class", "window p95 (ms)", "violation min", "nodes", "shed ops", "throttled")
	for _, row := range []struct {
		name string
		rep  *autonosql.Report
	}{
		{"scale-out", scale},
		{"throttle", throttle},
	} {
		for _, tr := range row.rep.Tenants {
			fmt.Printf("%-10s %-10s %-8s %-17.1f %-15.1f %-13s %-12d %.1fmin\n",
				row.name, tr.Name, tr.Class, tr.Window.P95*1000, tr.Violations.Total,
				fmt.Sprintf("%d..%d", row.rep.MinClusterSize, row.rep.MaxClusterSize),
				tr.ShedOps, tr.ThrottledMinutes)
		}
	}

	gold := func(rep *autonosql.Report) autonosql.TenantReport { return rep.Tenants[0] }
	batch := throttle.Tenants[1]
	fmt.Printf("\ngold violation minutes: scale-out=%.1f throttle=%.1f; cluster: scale-out %d..%d nodes, throttle %d..%d nodes\n",
		gold(scale).Violations.Total, gold(throttle).Violations.Total,
		scale.MinClusterSize, scale.MaxClusterSize,
		throttle.MinClusterSize, throttle.MaxClusterSize)
	fmt.Printf("infrastructure: scale-out $%.2f over %.2f node-hours, throttle $%.2f over %.2f node-hours\n",
		scale.Cost.Infrastructure, scale.Cost.NodeHours,
		throttle.Cost.Infrastructure, throttle.Cost.NodeHours)

	fmt.Println("\nbatch tenant's throttle windows (admission run):")
	for _, w := range batch.Throttles {
		fmt.Printf("  %s\n", w)
	}

	fmt.Println("\ncontroller decisions (admission run; scoped actions name their target):")
	for _, d := range throttle.Decisions {
		fmt.Printf("  %s\n", d)
	}

	fmt.Println("\ngold tenant's ground-truth window under scale-out:")
	fmt.Print(scale.PlotSeries("tenant/checkout/window_p95_ms", 40))
	fmt.Println("\nsame tenant with admission control (cluster size unchanged):")
	fmt.Print(throttle.PlotSeries("tenant/checkout/window_p95_ms", 40))

	if throttle.MaxClusterSize != throttle.MinClusterSize {
		log.Fatalf("admission run scaled the cluster (%d..%d nodes) — throttling alone was supposed to hold the SLA",
			throttle.MinClusterSize, throttle.MaxClusterSize)
	}
	if batch.ShedOps == 0 || len(batch.Throttles) == 0 {
		log.Fatal("admission run recorded no throttle windows or shed operations")
	}
}
