// Chaos: evaluate the controllers under injected faults. The suite sweeps
// the fault axis — failure-free, a node crash with restart, a network
// partition with heal, and a latency storm — against the static configuration
// and the paper's smart controller, under identical seeds and load. The fault
// table shows how far the inconsistency window blows up inside each fault
// window and how much of that time the SLA was violated; the comparison
// tables show what the controller's reactions cost.
//
// This is the scenario family the paper motivates but never runs: the
// inconsistency window under *degraded* dynamic conditions, where node loss
// and broken links dominate real operations.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func main() {
	base := autonosql.DefaultScenarioSpec()
	base.Seed = 7
	base.Duration = 4 * time.Minute
	base.Cluster.InitialNodes = 4
	base.Cluster.NodeOpsPerSec = 2500
	base.Cluster.MaxNodes = 10
	base.Workload.BaseOpsPerSec = 3000
	base.SLA.MaxWindowP95 = 150 * time.Millisecond

	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
			Faults:      autonosql.DefaultFaultProfiles(base.Duration),
		},
	})
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}

	fmt.Printf("running %d variants (fault profiles: none, crash, partition, slow, storm)...\n\n",
		len(suite.Variants()))
	report, err := suite.Run()
	if err != nil {
		log.Fatalf("running suite: %v", err)
	}

	fmt.Print(report.ComparisonTable())
	fmt.Println()
	fmt.Print(report.FaultsTable())
	fmt.Println()
	fmt.Print(report.CostTable())

	// A hand-written plan shows the DSL the CLIs accept: a two-node
	// partition while a latency storm rages, healed mid-run.
	plan, err := autonosql.ParseFaultPlan("partition:1m:45s:n=2,storm:1m:90s:sev=0.6")
	if err != nil {
		log.Fatalf("parsing fault plan: %v", err)
	}
	spec := base
	spec.Faults = plan
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	rep, err := scenario.Run()
	if err != nil {
		log.Fatalf("running scenario: %v", err)
	}
	fmt.Println("\ncompound fault scenario (partition during a latency storm):")
	fmt.Print(rep.String())
}
