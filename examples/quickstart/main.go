// Quickstart: run the default scenario — a three-node eventually-consistent
// cluster under a constant YCSB-A-style workload, monitored by read-after-write
// probes and managed by the SLA-driven smart controller — and print the
// resulting report.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func main() {
	spec := autonosql.DefaultScenarioSpec()
	spec.Duration = 3 * time.Minute
	spec.Workload.BaseOpsPerSec = 4000
	spec.SLA.MaxWindowP95 = 100 * time.Millisecond
	spec.Controller.Mode = autonosql.ControllerSmart

	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	report, err := scenario.Run()
	if err != nil {
		log.Fatalf("running scenario: %v", err)
	}

	fmt.Print(report)
	if len(report.Decisions) > 0 {
		fmt.Println("\ncontroller decisions:")
		for _, d := range report.Decisions {
			fmt.Println(" ", d)
		}
	}
	fmt.Println()
	fmt.Print(report.PlotSeries(autonosql.SeriesWindowP95, 50))
}
