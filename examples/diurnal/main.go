// Diurnal: a web application's day/night traffic cycle served three ways —
// statically provisioned for the peak, statically provisioned for the
// average, and by the paper's SLA-driven smart controller. The example prints
// the SLA compliance and cost of each policy and the cluster-size timeline of
// the smart controller, which should track the load curve.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func diurnalSpec() autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Duration = 12 * time.Minute // one compressed "day"
	spec.SampleInterval = 10 * time.Second
	spec.Cluster.InitialNodes = 3
	spec.Cluster.MinNodes = 2
	spec.Cluster.MaxNodes = 12
	spec.Cluster.NodeOpsPerSec = 2000
	spec.Cluster.BootstrapTime = 30 * time.Second
	spec.Workload.Pattern = autonosql.LoadDiurnal
	spec.Workload.BaseOpsPerSec = 800
	spec.Workload.PeakOpsPerSec = 3000
	spec.Workload.ReadFraction = 0.6
	spec.SLA.MaxWindowP95 = 150 * time.Millisecond
	return spec
}

func run(name string, spec autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatalf("%s: building scenario: %v", name, err)
	}
	report, err := scenario.Run()
	if err != nil {
		log.Fatalf("%s: running scenario: %v", name, err)
	}
	return report
}

func main() {
	fmt.Printf("%-28s %-16s %-20s %-12s %-12s\n",
		"policy", "window p95 (ms)", "violation minutes", "node-hours", "total cost")

	// Statically provisioned for the peak.
	peak := diurnalSpec()
	peak.Cluster.InitialNodes = 8
	peak.Cluster.MinNodes = 8
	peak.Controller.Mode = autonosql.ControllerNone
	repPeak := run("static-peak", peak)

	// Statically provisioned for the average.
	avg := diurnalSpec()
	avg.Controller.Mode = autonosql.ControllerNone
	repAvg := run("static-average", avg)

	// Smart SLA-driven controller.
	smart := diurnalSpec()
	smart.Controller.Mode = autonosql.ControllerSmart
	repSmart := run("smart", smart)

	for _, row := range []struct {
		name string
		rep  *autonosql.Report
	}{
		{"static for the peak (8)", repPeak},
		{"static for the average (3)", repAvg},
		{"smart SLA-driven", repSmart},
	} {
		fmt.Printf("%-28s %-16.1f %-20.1f %-12.2f $%-11.2f\n",
			row.name, row.rep.Window.P95*1000, row.rep.Violations.Total,
			row.rep.Cost.NodeHours, row.rep.Cost.Total)
	}

	fmt.Println()
	fmt.Print(repSmart.PlotSeries(autonosql.SeriesOfferedLoad, 40))
	fmt.Println()
	fmt.Print(repSmart.PlotSeries(autonosql.SeriesClusterSize, 40))
}
