// Replay: record one run's arrival stream as a trace, then replay it —
// byte-identically — under every controller through the suite's trace axis.
// Because each variant faces the exact same recorded arrivals rather than a
// fresh draw from the workload generators, any difference between the rows
// is attributable to the controller alone: this is the exact
// cross-controller comparison the trace format exists for.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func main() {
	// A gold diurnal service plus a bronze flash crowd: enough pressure that
	// the controllers actually diverge.
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = 7
	spec.Duration = 16 * time.Minute
	spec.SampleInterval = 10 * time.Second
	spec.Cluster.InitialNodes = 4
	spec.Cluster.MaxNodes = 10
	spec.Cluster.NodeOpsPerSec = 2000
	spec.Cluster.BootstrapTime = 20 * time.Second
	spec.Controller.Mode = autonosql.ControllerNone
	// Smart variants may throttle the flash crowd instead of scaling into it.
	spec.Controller.Admission = autonosql.AdmissionSpec{Enabled: true}
	spec.Tenants = []autonosql.TenantSpec{
		{Name: "gold", Class: autonosql.SLAGold, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadDiurnal, BaseOpsPerSec: 800, PeakOpsPerSec: 1300, ReadFraction: 0.7,
		}},
		{Name: "bronze", Class: autonosql.SLABronze, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadSpike, BaseOpsPerSec: 400, PeakOpsPerSec: 1400, ReadFraction: 0.2,
			PeakStart: 6 * time.Minute, PeakDuration: 5 * time.Minute,
		}},
	}

	// Record: run once with trace recording armed. Recording is pure
	// observation — this run's report is byte-identical to an unrecorded one.
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	if err := scenario.RecordTrace(); err != nil {
		log.Fatalf("arming recorder: %v", err)
	}
	if _, err := scenario.Run(); err != nil {
		log.Fatalf("recording run: %v", err)
	}
	trace, err := scenario.RecordedTrace()
	if err != nil {
		log.Fatalf("extracting trace: %v", err)
	}
	fmt.Printf("recorded %d arrivals over %v from tenants %v\n\n",
		trace.EventCount(), trace.Duration().Round(time.Second), trace.TenantNames())

	// Replay: a suite over the controller axis × this one trace. Every
	// variant replays the identical arrivals; the generators (and their
	// random streams) are never consulted.
	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Base: spec,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{
				autonosql.ControllerNone, autonosql.ControllerReactive, autonosql.ControllerSmart,
			},
			Traces: []autonosql.NamedTrace{{Name: "recorded", Trace: trace}},
		},
	})
	if err != nil {
		log.Fatalf("building suite: %v", err)
	}
	report, err := suite.Run()
	if err != nil {
		log.Fatalf("running suite: %v", err)
	}

	fmt.Print(report.ComparisonTable())
	fmt.Println()
	fmt.Print(report.CostTable())
	if tt := report.TenantsTable(); tt != "" {
		fmt.Println()
		fmt.Print(tt)
	}
	fmt.Println("\nsame arrivals in every row - the deltas are the controllers'.")
}
