// E-commerce: the paper motivates dynamic consistency management with the
// double-booking problem — every stale read an online shop serves can turn
// into a double booking the business has to compensate. This example prices
// that trade-off: the same checkout-style workload is run under increasingly
// strict write consistency, and the report compares the compensation cost of
// stale reads against the latency (and SLA penalty) cost of stricter
// consistency, then lets the smart controller pick the configuration from the
// SLA instead.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func baseSpec() autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Duration = 3 * time.Minute
	spec.Cluster.InitialNodes = 3
	spec.Cluster.NodeOpsPerSec = 2000
	spec.Workload.Pattern = autonosql.LoadConstant
	spec.Workload.BaseOpsPerSec = 2000
	spec.Workload.ReadFraction = 0.5 // read product, write order
	spec.Workload.Keys = autonosql.KeysZipfian
	spec.SLA.MaxWindowP95 = 100 * time.Millisecond
	spec.SLA.MaxWriteLatencyP99 = 30 * time.Millisecond
	spec.SLA.StaleReadCompensation = 0.05 // a double booking is expensive
	spec.Controller.Mode = autonosql.ControllerNone
	return spec
}

func runOnce(spec autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	report, err := scenario.Run()
	if err != nil {
		log.Fatalf("running scenario: %v", err)
	}
	return report
}

func main() {
	fmt.Println("static write-consistency choices for the checkout workload:")
	fmt.Printf("%-10s %-16s %-16s %-14s %-14s %-12s\n",
		"write CL", "window p95 (ms)", "write p99 (ms)", "stale reads", "compensation", "total cost")
	for _, cl := range []autonosql.ConsistencyLevel{
		autonosql.ConsistencyOne, autonosql.ConsistencyQuorum, autonosql.ConsistencyAll,
	} {
		spec := baseSpec()
		spec.Store.WriteConsistency = cl
		rep := runOnce(spec)
		fmt.Printf("%-10s %-16.1f %-16.1f %-14d $%-13.2f $%-11.2f\n",
			cl, rep.Window.P95*1000, rep.WriteLatency.P99*1000, rep.StaleReads,
			rep.Cost.Compensation, rep.Cost.Total)
	}

	fmt.Println("\nSLA-driven controller (starts at CL=ONE and derives the configuration itself):")
	spec := baseSpec()
	spec.Controller.Mode = autonosql.ControllerSmart
	rep := runOnce(spec)
	fmt.Printf("final configuration: %d nodes, write CL=%s, %d reconfigurations\n",
		rep.FinalConfiguration.ClusterSize, rep.FinalConfiguration.WriteConsistency, rep.Reconfigurations)
	fmt.Printf("window p95 = %.1f ms, stale reads = %d, compensation = $%.2f, total cost = $%.2f\n",
		rep.Window.P95*1000, rep.StaleReads, rep.Cost.Compensation, rep.Cost.Total)
}
