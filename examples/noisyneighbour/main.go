// Noisy neighbour: Bermbach & Tai observed that the inconsistency window of
// cloud storage drifts over time even when nothing about the database or its
// workload changes, because the underlying platform is shared. This example
// reproduces that drift — the same cluster and workload are run on a quiet
// platform and on one with multi-tenant interference — and then shows the
// smart controller absorbing the drift by reconfiguring.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func spec(noisy bool, mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	s := autonosql.DefaultScenarioSpec()
	s.Duration = 6 * time.Minute
	s.SampleInterval = 10 * time.Second
	s.Cluster.InitialNodes = 3
	s.Cluster.NodeOpsPerSec = 2000
	s.Cluster.NoisyNeighbour = noisy
	s.Workload.Pattern = autonosql.LoadConstant
	s.Workload.BaseOpsPerSec = 1700
	s.SLA.MaxWindowP95 = 100 * time.Millisecond
	s.Controller.Mode = mode
	return s
}

func run(name string, s autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(s)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	rep, err := scenario.Run()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	quiet := run("quiet", spec(false, autonosql.ControllerNone))
	noisy := run("noisy", spec(true, autonosql.ControllerNone))
	managed := run("managed", spec(true, autonosql.ControllerSmart))

	fmt.Println("identical database configuration and workload, different platform conditions:")
	fmt.Printf("%-34s %-16s %-16s %-20s\n", "run", "window p95 (ms)", "stale reads", "violation minutes")
	for _, row := range []struct {
		name string
		rep  *autonosql.Report
	}{
		{"quiet platform, no controller", quiet},
		{"noisy platform, no controller", noisy},
		{"noisy platform, smart controller", managed},
	} {
		fmt.Printf("%-34s %-16.1f %-16d %-20.1f\n",
			row.name, row.rep.Window.P95*1000, row.rep.StaleReads, row.rep.Violations.Total)
	}

	fmt.Println("\nwindow drift on the noisy platform (no controller):")
	fmt.Print(noisy.PlotSeries(autonosql.SeriesWindowP95, 40))
	fmt.Println("\nsame platform with the smart controller:")
	fmt.Print(managed.PlotSeries(autonosql.SeriesWindowP95, 40))
	fmt.Printf("\nsmart controller applied %d reconfigurations; final configuration: %d nodes, CL=%s\n",
		managed.Reconfigurations, managed.FinalConfiguration.ClusterSize,
		managed.FinalConfiguration.WriteConsistency)
}
