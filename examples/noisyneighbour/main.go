// Noisy neighbour: Bermbach & Tai observed that the inconsistency window of
// cloud storage drifts over time even when nothing about the database or its
// workload changes, because the underlying platform is shared. This example
// reproduces that drift — the same cluster and workloads are run on a quiet
// platform and on one with multi-tenant interference — and then shows the
// smart controller absorbing the drift by reconfiguring.
//
// The client traffic itself is two first-class tenants (a gold-class
// application and a bronze-class batch job), so the report attributes the
// platform drift per tenant instead of only showing the aggregate window:
// the gold tenant's tight SLA is what turns the same drift into real
// penalty cost.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func spec(noisy bool, mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	s := autonosql.DefaultScenarioSpec()
	s.Duration = 6 * time.Minute
	s.SampleInterval = 10 * time.Second
	s.Cluster.InitialNodes = 3
	s.Cluster.NodeOpsPerSec = 2000
	s.Cluster.NoisyNeighbour = noisy
	s.SLA.MaxWindowP95 = 100 * time.Millisecond
	s.Controller.Mode = mode
	s.Tenants = []autonosql.TenantSpec{
		{Name: "app", Class: autonosql.SLAGold, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadConstant, BaseOpsPerSec: 1000, ReadFraction: 0.6,
		}},
		{Name: "batch", Class: autonosql.SLABronze, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadConstant, BaseOpsPerSec: 400, ReadFraction: 0.2,
		}},
	}
	return s
}

func run(name string, s autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(s)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	rep, err := scenario.Run()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	quiet := run("quiet", spec(false, autonosql.ControllerNone))
	noisy := run("noisy", spec(true, autonosql.ControllerNone))
	managed := run("managed", spec(true, autonosql.ControllerSmart))

	fmt.Println("identical database configuration and workloads, different platform conditions:")
	fmt.Printf("%-34s %-8s %-8s %-17s %-15s %-14s\n",
		"run", "tenant", "class", "window p95 (ms)", "violation min", "penalty ($)")
	for _, row := range []struct {
		name string
		rep  *autonosql.Report
	}{
		{"quiet platform, no controller", quiet},
		{"noisy platform, no controller", noisy},
		{"noisy platform, smart controller", managed},
	} {
		for _, tr := range row.rep.Tenants {
			fmt.Printf("%-34s %-8s %-8s %-17.1f %-15.1f %-14.2f\n",
				row.name, tr.Name, tr.Class, tr.Window.P95*1000,
				tr.Violations.Total, tr.PenaltyCost+tr.CompensationCost)
		}
	}

	fmt.Println("\nthe same platform drift, attributed per tenant (noisy platform, no controller):")
	fmt.Print(noisy.PlotSeries("tenant/app/window_p95_ms", 40))
	fmt.Println("\nsame platform with the smart controller:")
	fmt.Print(managed.PlotSeries("tenant/app/window_p95_ms", 40))
	fmt.Printf("\nsmart controller applied %d reconfigurations; final configuration: %d nodes, CL=%s\n",
		managed.Reconfigurations, managed.FinalConfiguration.ClusterSize,
		managed.FinalConfiguration.WriteConsistency)
	for _, d := range managed.Decisions {
		fmt.Printf("  %s\n", d)
	}
}
