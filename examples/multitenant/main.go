// Multi-tenant SLA classes: a premium (gold) tenant with a tight
// inconsistency-window bound shares the cluster with a best-effort (bronze)
// batch tenant. Mid-run the bronze tenant's write-heavy flash crowd saturates
// the replicas, and the gold tenant — whose own traffic never changed — takes
// the damage: replica applies queue behind the burst and its inconsistency
// window blows through its SLA.
//
// The classic CPU-threshold autoscaler only sees aggregate utilisation, so it
// reacts late and blindly and the gold tenant's window degrades by orders of
// magnitude. The tenant-aware smart controller consumes the worst
// penalty-weighted tenant signal, so the gold tenant's distress drives the
// control loop directly — predictive scale-out fires on the burst's ramp,
// every decision names the tenant that triggered it, and scale-in is vetoed
// while gold is in violation — keeping the breach several times smaller and
// the recovery faster.
package main

import (
	"fmt"
	"log"
	"time"

	"autonosql"
)

func spec(mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	s := autonosql.DefaultScenarioSpec()
	s.Duration = 16 * time.Minute
	s.SampleInterval = 10 * time.Second
	s.Cluster.InitialNodes = 4
	s.Cluster.MaxNodes = 10
	s.Cluster.NodeOpsPerSec = 2000
	s.Cluster.BootstrapTime = 20 * time.Second
	s.Controller.Mode = mode
	s.Tenants = []autonosql.TenantSpec{
		{
			// The premium service: steady daytime traffic, strict window SLA.
			Name:  "checkout",
			Class: autonosql.SLAGold,
			Workload: autonosql.WorkloadSpec{
				Pattern:       autonosql.LoadDiurnal,
				BaseOpsPerSec: 800,
				PeakOpsPerSec: 1300,
				ReadFraction:  0.7,
			},
		},
		{
			// The noisy neighbour: a write-heavy batch job that ramps to three
			// and a half times its base rate for five minutes mid-run.
			Name:  "batch",
			Class: autonosql.SLABronze,
			Workload: autonosql.WorkloadSpec{
				Pattern:       autonosql.LoadSpike,
				BaseOpsPerSec: 400,
				PeakOpsPerSec: 1400,
				ReadFraction:  0.2,
				PeakStart:     6 * time.Minute,
				PeakDuration:  5 * time.Minute,
			},
		},
	}
	return s
}

func run(name string, s autonosql.ScenarioSpec) *autonosql.Report {
	scenario, err := autonosql.NewScenario(s)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	rep, err := scenario.Run()
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep
}

func main() {
	reactive := run("reactive", spec(autonosql.ControllerReactive))
	smart := run("smart", spec(autonosql.ControllerSmart))

	fmt.Println("same two tenants (gold diurnal + bronze flash crowd), different controllers:")
	fmt.Printf("%-10s %-10s %-8s %-17s %-15s %-14s %-10s\n",
		"controller", "tenant", "class", "window p95 (ms)", "violation min", "penalty ($)", "stale")
	for _, row := range []struct {
		name string
		rep  *autonosql.Report
	}{
		{"reactive", reactive},
		{"smart", smart},
	} {
		for _, tr := range row.rep.Tenants {
			fmt.Printf("%-10s %-10s %-8s %-17.1f %-15.1f %-14.2f %-10d\n",
				row.name, tr.Name, tr.Class, tr.Window.P95*1000,
				tr.Violations.Total, tr.PenaltyCost+tr.CompensationCost, tr.StaleReads)
		}
	}

	gold := func(rep *autonosql.Report) autonosql.TenantReport { return rep.Tenants[0] }
	fmt.Printf("\ngold window p95 over the run: reactive=%.0fms smart=%.0fms (%.1fx better)\n",
		gold(reactive).Window.P95*1000, gold(smart).Window.P95*1000,
		gold(reactive).Window.P95/gold(smart).Window.P95)

	fmt.Println("\ngold tenant's ground-truth window under the reactive controller:")
	fmt.Print(reactive.PlotSeries("tenant/checkout/window_p95_ms", 40))
	fmt.Println("\nsame tenant under the tenant-aware smart controller:")
	fmt.Print(smart.PlotSeries("tenant/checkout/window_p95_ms", 40))

	fmt.Println("\nsmart controller decisions (each names the tenant that drove it):")
	for _, d := range smart.Decisions {
		fmt.Printf("  %s\n", d)
	}
}
