package autonosql

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"autonosql/internal/sim"
)

// SLATier is a named SLA strictness preset used as a suite axis: the whole
// SLASpec (clause bounds and prices) a variant runs under.
type SLATier struct {
	// Name identifies the tier in variant names and report rows.
	Name string
	// SLA is the agreement applied to variants on this tier.
	SLA SLASpec
}

// DefaultSLATiers returns the three presets the suite runner and CLI expose:
// tight (strict bounds, expensive violations), default (the bounds of
// DefaultScenarioSpec) and loose (bounds an eventually-consistent application
// that tolerates staleness would accept).
func DefaultSLATiers() []SLATier {
	def := DefaultScenarioSpec().SLA
	tight := def
	tight.MaxWindowP95 = 50 * time.Millisecond
	tight.MaxReadLatencyP99 = 15 * time.Millisecond
	tight.MaxWriteLatencyP99 = 20 * time.Millisecond
	tight.MaxErrorRate = 0.0005
	tight.ViolationPenaltyPerMinute = 2.00
	loose := def
	loose.MaxWindowP95 = time.Second
	loose.MaxReadLatencyP99 = 50 * time.Millisecond
	loose.MaxWriteLatencyP99 = 60 * time.Millisecond
	loose.MaxErrorRate = 0.01
	loose.ViolationPenaltyPerMinute = 0.50
	return []SLATier{
		{Name: "tight", SLA: tight},
		{Name: "default", SLA: def},
		{Name: "loose", SLA: loose},
	}
}

// LookupSLATier returns the default tier with the given name.
func LookupSLATier(name string) (SLATier, bool) {
	for _, t := range DefaultSLATiers() {
		if t.Name == name {
			return t, true
		}
	}
	return SLATier{}, false
}

// Grid is the axis grid of a suite. Each non-empty axis multiplies the
// number of variants; an empty axis keeps the base spec's value. The
// expansion order is fixed (pattern, controller, cluster size, SLA tier,
// fault profile, tenant mix, trace, seed offset), so a given grid always
// produces the same variants in the same order.
type Grid struct {
	// Patterns are the workload load shapes to sweep over.
	Patterns []LoadPattern
	// Controllers are the controller modes to sweep over.
	Controllers []ControllerMode
	// ClusterSizes are the initial cluster sizes to sweep over.
	ClusterSizes []int
	// SLATiers are the SLA presets to sweep over.
	SLATiers []SLATier
	// Faults are the fault profiles to sweep over (e.g. none vs crash vs
	// partition), so controllers can be compared under identical degraded
	// conditions.
	Faults []FaultProfile
	// TenantMixes are the tenant populations to sweep over (e.g. none vs a
	// gold+bronze pair), so controllers can be compared under identical
	// multi-tenant pressure.
	TenantMixes []TenantMix
	// Traces are recorded arrival streams to sweep over: each variant on a
	// trace replays those exact arrivals instead of generating fresh ones, so
	// every controller variant faces byte-identical client traffic. A trace's
	// tenant population must match the variant's tenant declarations.
	Traces []NamedTrace
	// Shards are the simulation engine shard counts to sweep over. Shards is
	// a pure performance knob — every count produces bit-for-bit identical
	// reports — so this axis exists for benchmarking and for regression
	// sweeps proving exactly that.
	Shards []int
	// Repeats runs every cell with that many different derived seeds
	// (0 and 1 both mean one run per cell).
	Repeats int
}

// Size returns the number of variants the grid expands to over a base spec.
func (g Grid) Size() int {
	n := 1
	for _, axis := range []int{len(g.Patterns), len(g.Controllers), len(g.ClusterSizes), len(g.SLATiers), len(g.Faults), len(g.TenantMixes), len(g.Traces), len(g.Shards)} {
		if axis > 0 {
			n *= axis
		}
	}
	if g.Repeats > 1 {
		n *= g.Repeats
	}
	return n
}

// Variant is one concrete scenario inside a suite.
type Variant struct {
	// Name identifies the variant in reports and exports; it must be unique
	// within a suite.
	Name string
	// Spec is the complete scenario specification, including the seed.
	Spec ScenarioSpec
	// Configure, when non-nil, runs on the assembled Scenario before it is
	// executed — for example to register Scenario.At interventions.
	Configure func(*Scenario) error
}

// ExpandGrid expands the axis grid over a base spec into the full cross
// product of variants. Every variant gets a deterministic seed derived from
// the base seed and the variant name, so (a) two variants never share a seed
// and (b) the same base spec and grid always produce the same variants, in
// the same order, regardless of where or how often they run. A grid with no
// swept axis expands to the single base spec verbatim, seed included.
func ExpandGrid(base ScenarioSpec, grid Grid) []Variant {
	patterns := grid.Patterns
	if len(patterns) == 0 {
		patterns = []LoadPattern{base.Workload.Pattern}
	}
	controllers := grid.Controllers
	if len(controllers) == 0 {
		controllers = []ControllerMode{base.Controller.Mode}
	}
	sizes := grid.ClusterSizes
	if len(sizes) == 0 {
		sizes = []int{base.Cluster.InitialNodes}
	}
	tiers := grid.SLATiers
	if len(tiers) == 0 {
		tiers = []SLATier{{SLA: base.SLA}}
	}
	faults := grid.Faults
	if len(faults) == 0 {
		faults = []FaultProfile{{Plan: base.Faults}}
	}
	mixes := grid.TenantMixes
	if len(mixes) == 0 {
		mixes = []TenantMix{{Tenants: base.Tenants}}
	}
	traces := grid.Traces
	if len(traces) == 0 {
		traces = []NamedTrace{{Trace: base.Replay}}
	}
	shardCounts := grid.Shards
	if len(shardCounts) == 0 {
		shardCounts = []int{base.Shards}
	}
	repeats := grid.Repeats
	if repeats < 1 {
		repeats = 1
	}
	gridNoShards := grid
	gridNoShards.Shards = nil

	variants := make([]Variant, 0, grid.Size())
	for _, pattern := range patterns {
		for _, controller := range controllers {
			for _, size := range sizes {
				for _, tier := range tiers {
					for _, fp := range faults {
						for _, mix := range mixes {
							for _, nt := range traces {
								for _, shards := range shardCounts {
									for rep := 0; rep < repeats; rep++ {
										name := gridVariantName(grid, pattern, controller, size, tier, fp, mix, nt, shards, rep)
										spec := base
										if name == "base" {
											// Degenerate grid with no swept axis: keep the
											// base spec (and its seed) verbatim, so a suite
											// of one reproduces a direct NewScenario run.
											variants = append(variants, Variant{Name: name, Spec: spec})
											continue
										}
										if len(grid.Patterns) > 0 {
											spec.Workload.Pattern = pattern
										}
										if len(grid.Controllers) > 0 {
											spec.Controller.Mode = controller
										}
										if len(grid.ClusterSizes) > 0 {
											spec.Cluster.InitialNodes = size
										}
										if len(grid.SLATiers) > 0 {
											spec.SLA = tier.SLA
										}
										if len(grid.Faults) > 0 {
											spec.Faults = fp.Plan
										}
										if len(grid.TenantMixes) > 0 {
											spec.Tenants = mix.Tenants
										}
										if len(grid.Traces) > 0 {
											spec.Replay = nt.Trace
										}
										if len(grid.Shards) > 0 {
											spec.Shards = shards
										}
										// The seed is derived from the name minus the
										// shards component: shard count is a pure
										// performance knob, so variants differing only in
										// shards must simulate the identical system —
										// which also makes the axis a live equivalence
										// check on every sweep.
										seedName := gridVariantName(gridNoShards, pattern, controller, size, tier, fp, mix, nt, shards, rep)
										if seedName != "base" {
											spec.Seed = sim.DeriveSeed(base.Seed, seedName)
										}
										variants = append(variants, Variant{Name: name, Spec: spec})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return variants
}

// gridVariantName builds the canonical variant name from the swept axis
// values; axes the grid does not sweep contribute no component.
func gridVariantName(grid Grid, pattern LoadPattern, controller ControllerMode, size int, tier SLATier, fp FaultProfile, mix TenantMix, nt NamedTrace, shards, rep int) string {
	var parts []string
	if len(grid.Patterns) > 0 {
		parts = append(parts, "pattern="+string(patternOrConstant(pattern)))
	}
	if len(grid.Controllers) > 0 {
		parts = append(parts, "ctl="+string(modeOrNone(controller)))
	}
	if len(grid.ClusterSizes) > 0 {
		parts = append(parts, fmt.Sprintf("nodes=%d", size))
	}
	if len(grid.SLATiers) > 0 {
		parts = append(parts, "sla="+tier.Name)
	}
	if len(grid.Faults) > 0 {
		parts = append(parts, "faults="+fp.Name)
	}
	if len(grid.TenantMixes) > 0 {
		parts = append(parts, "tenants="+mix.Name)
	}
	if len(grid.Traces) > 0 {
		parts = append(parts, "trace="+nt.Name)
	}
	if len(grid.Shards) > 0 {
		parts = append(parts, fmt.Sprintf("shards=%d", shards))
	}
	if grid.Repeats > 1 {
		parts = append(parts, fmt.Sprintf("rep=%d", rep))
	}
	if len(parts) == 0 {
		return "base"
	}
	name := parts[0]
	for _, p := range parts[1:] {
		name += " " + p
	}
	return name
}

// SuiteSpec describes a batch of scenario variants to run and compare: a
// base spec, an axis grid expanded over it, optional explicit variants
// appended after the grid, and the concurrency bound.
type SuiteSpec struct {
	// Base is the spec every grid variant starts from.
	Base ScenarioSpec
	// Grid is the axis grid expanded over Base.
	Grid Grid
	// Variants are explicit variants appended after the grid expansion.
	// Their specs are used verbatim (including their seeds).
	Variants []Variant
	// Parallelism bounds the number of concurrently running scenarios;
	// zero or negative means GOMAXPROCS.
	Parallelism int
}

// Suite is a validated, expanded batch of scenario variants. Build it with
// NewSuite and execute it with Run; a suite can be run any number of times
// and always produces the same SuiteReport.
type Suite struct {
	spec     SuiteSpec
	variants []Variant
}

// NewSuite expands the grid, appends the explicit variants and validates
// every resulting scenario spec and name.
func NewSuite(spec SuiteSpec) (*Suite, error) {
	variants := ExpandGrid(spec.Base, spec.Grid)
	if len(spec.Grid.Patterns) == 0 && len(spec.Grid.Controllers) == 0 &&
		len(spec.Grid.ClusterSizes) == 0 && len(spec.Grid.SLATiers) == 0 &&
		len(spec.Grid.Faults) == 0 && len(spec.Grid.TenantMixes) == 0 &&
		len(spec.Grid.Traces) == 0 && len(spec.Grid.Shards) == 0 &&
		spec.Grid.Repeats <= 1 {
		// A grid with no swept axis expands to the bare base spec; drop it
		// when explicit variants are given, so SuiteSpec{Variants: ...} does
		// not smuggle in an extra run of the base.
		if len(spec.Variants) > 0 {
			variants = variants[:0]
		}
	}
	variants = append(variants, spec.Variants...)
	if len(variants) == 0 {
		return nil, errors.New("autonosql: suite has no variants")
	}
	seen := make(map[string]struct{}, len(variants))
	for i, v := range variants {
		if v.Name == "" {
			return nil, fmt.Errorf("autonosql: suite variant %d has no name", i)
		}
		if _, dup := seen[v.Name]; dup {
			return nil, fmt.Errorf("autonosql: duplicate suite variant name %q", v.Name)
		}
		seen[v.Name] = struct{}{}
		if err := v.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("autonosql: suite variant %q: %w", v.Name, err)
		}
	}
	return &Suite{spec: spec, variants: variants}, nil
}

// Variants returns the expanded variants in execution order.
func (s *Suite) Variants() []Variant {
	out := make([]Variant, len(s.variants))
	copy(out, s.variants)
	return out
}

// Run executes every variant across a bounded pool of goroutines and
// aggregates the per-variant reports into a SuiteReport. Each variant is an
// independent simulation with its own engine and random streams, so the
// report is identical whatever the parallelism; results are ordered by
// variant index, not completion order. A failing variant aborts the suite:
// in-flight variants finish, unstarted ones are skipped, and Run returns the
// first failure by variant index — alongside the partial SuiteReport holding
// every variant that was attempted (completed reports plus the failed
// variants with VariantResult.Err set), so a long run that dies near the end
// is recoverable rather than a total loss.
func (s *Suite) Run() (*SuiteReport, error) {
	var results []VariantResult
	meta, err := s.run(func(v VariantResult) error {
		results = append(results, v)
		return nil
	}, false)
	report := &SuiteReport{Variants: results, Elapsed: meta.Elapsed, Parallelism: meta.Parallelism}
	return report, err
}

// RunStream executes the suite like Run but hands each VariantResult to
// consume as soon as it is available instead of accumulating a SuiteReport:
// results arrive in variant-index order (not completion order), on a single
// goroutine, completed and failed variants alike. The claim window is bounded
// by the resolved parallelism, so at most Parallelism reports are retained at
// any moment however many variants the suite has — the path million-variant
// grids aggregate through (pair it with a SuiteAggregator). A non-nil error
// from consume aborts the suite like a variant failure. The returned RunMeta
// is the run's wall-clock envelope; the error aggregates the first variant
// failure (or consume error) exactly as Run does.
func (s *Suite) RunStream(consume func(VariantResult) error) (RunMeta, error) {
	return s.run(consume, true)
}

// run is the shared suite runner. Workers claim variant indices in order and
// a reorder buffer delivers results to consume in that same order, under one
// lock, so the consumer needs no synchronisation. With windowed set, a worker
// may only claim index i once i < delivered+workers — bounding
// claimed-but-undelivered results (the reports held in memory) to the worker
// count; without it, claims run ahead freely and delivery order is still by
// index. On the first variant failure (or consume error) claiming stops:
// in-flight variants finish and are delivered, unclaimed ones are skipped.
func (s *Suite) run(consume func(VariantResult) error, windowed bool) (RunMeta, error) {
	n := len(s.variants)
	workers := s.spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	started := time.Now()
	var (
		mu         sync.Mutex
		cond       = sync.NewCond(&mu)
		nextClaim  int
		delivered  int
		buf        = make(map[int]*VariantResult, workers)
		aborted    bool
		firstErr   error // earliest-index variant failure
		firstIdx   = n
		consumeErr error
		attempted  int
		failures   int
	)
	// flush delivers buffered results in index order. Caller holds mu.
	flush := func() {
		for {
			res, ok := buf[delivered]
			if !ok {
				return
			}
			delete(buf, delivered)
			delivered++
			attempted++
			if res.Err != nil {
				failures++
			}
			if consume != nil && consumeErr == nil {
				if err := consume(*res); err != nil {
					consumeErr = fmt.Errorf("autonosql: suite result consumer: %w", err)
					aborted = true
				}
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for windowed && nextClaim >= delivered+workers && nextClaim < n && !aborted {
					cond.Wait()
				}
				if aborted || nextClaim >= n {
					mu.Unlock()
					return
				}
				i := nextClaim
				nextClaim++
				mu.Unlock()

				v := s.variants[i]
				report, err := runVariant(v)
				res := &VariantResult{Name: v.Name, Spec: v.Spec, Report: report}
				if err != nil {
					res.Err = fmt.Errorf("autonosql: suite variant %q: %w", v.Name, err)
				}

				mu.Lock()
				buf[i] = res
				if err != nil {
					aborted = true
					if i < firstIdx {
						firstIdx = i
						firstErr = res.Err
					}
				}
				flush()
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	meta := RunMeta{
		Elapsed:     time.Since(started),
		Parallelism: workers,
		Variants:    attempted,
		Failed:      failures,
	}
	switch {
	case consumeErr != nil:
		return meta, consumeErr
	case firstErr != nil:
		return meta, firstErr
	}
	return meta, nil
}

// runVariant assembles, configures and runs one variant's scenario.
func runVariant(v Variant) (*Report, error) {
	scenario, err := NewScenario(v.Spec)
	if err != nil {
		return nil, err
	}
	if v.Configure != nil {
		if err := v.Configure(scenario); err != nil {
			return nil, fmt.Errorf("configuring: %w", err)
		}
	}
	return scenario.Run()
}
