package autonosql

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// streamGridSpec is a multi-axis grid — patterns × controllers × tenant
// mixes — so the equivalence test exercises every streamed surface,
// including the per-tenant CSV.
func streamGridSpec() SuiteSpec {
	return SuiteSpec{
		Base: suiteBaseSpec(),
		Grid: Grid{
			Patterns:    []LoadPattern{LoadConstant, LoadSpike},
			Controllers: []ControllerMode{ControllerNone, ControllerSmart},
			TenantMixes: []TenantMix{
				{Name: "none"},
				{Name: "pair", Tenants: []TenantSpec{
					{Name: "gold", Class: SLAGold, Workload: WorkloadSpec{
						Pattern: LoadConstant, BaseOpsPerSec: 400, ReadFraction: 0.6,
					}},
					{Name: "bronze", Class: SLABronze, Workload: WorkloadSpec{
						Pattern: LoadConstant, BaseOpsPerSec: 200, ReadFraction: 0.3,
					}},
				}},
			},
		},
	}
}

// TestSuiteStreamMatchesInMemoryExports pins the determinism contract of the
// streaming path: aggregating one result at a time — sequentially or
// concurrently — must produce byte-identical CSV, tenant CSV and JSON to the
// in-memory SuiteReport exports, identical rendered tables, and the same
// cheapest-compliant winner.
func TestSuiteStreamMatchesInMemoryExports(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}

	inMem, err := NewSuite(streamGridSpec())
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	report, err := inMem.Run()
	if err != nil {
		t.Fatalf("in-memory run: %v", err)
	}
	var wantCSV, wantTenants, wantJSON bytes.Buffer
	if err := report.WriteCSV(&wantCSV); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if err := report.WriteTenantsCSV(&wantTenants); err != nil {
		t.Fatalf("WriteTenantsCSV: %v", err)
	}
	if err := report.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	const threshold = 1e9 // every variant qualifies; winner is cheapest
	wantCheapest := report.CheapestCompliant(threshold)
	if wantCheapest == nil {
		t.Fatal("in-memory report has no compliant variant under an unbounded threshold")
	}

	for _, parallelism := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			spec := streamGridSpec()
			spec.Parallelism = parallelism
			suite, err := NewSuite(spec)
			if err != nil {
				t.Fatalf("NewSuite: %v", err)
			}
			spill := t.TempDir()
			var gotCSV, gotTenants, gotJSON bytes.Buffer
			agg := NewSuiteAggregator(SuiteAggregatorOptions{
				CSV:                 &gotCSV,
				TenantsCSV:          &gotTenants,
				JSON:                &gotJSON,
				SpillDir:            spill,
				MaxViolationMinutes: threshold,
			})
			meta, err := suite.RunStream(agg.Consume())
			if err != nil {
				t.Fatalf("RunStream: %v", err)
			}
			if err := agg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			if meta.Variants != report.Len() || meta.Failed != 0 {
				t.Errorf("RunMeta = %+v, want %d variants, 0 failed", meta, report.Len())
			}
			if agg.Added() != report.Len() {
				t.Errorf("aggregator consumed %d results, want %d", agg.Added(), report.Len())
			}
			if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
				t.Errorf("streamed CSV differs from in-memory export:\n got %q\nwant %q",
					gotCSV.String(), wantCSV.String())
			}
			if !bytes.Equal(gotTenants.Bytes(), wantTenants.Bytes()) {
				t.Errorf("streamed tenant CSV differs from in-memory export:\n got %q\nwant %q",
					gotTenants.String(), wantTenants.String())
			}
			if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
				t.Errorf("streamed JSON differs from in-memory export (%d vs %d bytes)",
					gotJSON.Len(), wantJSON.Len())
			}
			// The streamed JSON must also read back as a suite report.
			restored, err := ReadSuiteReportJSON(&gotJSON)
			if err != nil {
				t.Fatalf("reading streamed JSON back: %v", err)
			}
			if restored.Len() != report.Len() {
				t.Errorf("restored streamed report has %d variants, want %d", restored.Len(), report.Len())
			}

			if got, want := agg.String(), report.String(); got != want {
				t.Errorf("aggregated tables differ from in-memory tables:\n got:\n%s\nwant:\n%s", got, want)
			}
			cheapest := agg.CheapestCompliant()
			if cheapest == nil || cheapest.Name != wantCheapest.Name {
				t.Errorf("aggregated cheapest compliant = %v, want %q", cheapest, wantCheapest.Name)
			}

			entries, err := os.ReadDir(spill)
			if err != nil {
				t.Fatalf("reading spill dir: %v", err)
			}
			if len(entries) != report.Len() {
				t.Fatalf("spilled %d files, want %d", len(entries), report.Len())
			}
			// Spilled files sort in variant order thanks to the index prefix
			// and restore to the exact variant result.
			for i, e := range entries {
				if !strings.HasPrefix(e.Name(), fmt.Sprintf("%06d_", i)) {
					t.Errorf("spill file %d named %q, want index prefix %06d_", i, e.Name(), i)
				}
				b, err := os.ReadFile(filepath.Join(spill, e.Name()))
				if err != nil {
					t.Fatalf("reading spill file: %v", err)
				}
				if !strings.Contains(string(b), fmt.Sprintf("%q", report.Variants[i].Name)) {
					t.Errorf("spill file %q does not mention variant %q", e.Name(), report.Variants[i].Name)
				}
			}
		})
	}
}

// TestSuiteRunPartialReportOnFailure is the regression test for the lossy
// failure path: Suite.Run used to return (nil, err) on the first variant
// failure, discarding every completed report. It must now return the
// completed prefix alongside the error, with the failing variant carried as
// a VariantResult whose Err is set.
func TestSuiteRunPartialReportOnFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	const n, failAt = 6, 3
	variants := make([]Variant, n)
	for i := range variants {
		spec := suiteBaseSpec()
		spec.Seed = int64(1000 + i)
		variants[i] = Variant{Name: fmt.Sprintf("v%d", i), Spec: spec}
	}
	variants[failAt].Configure = func(*Scenario) error { return fmt.Errorf("boom at %d", failAt) }

	suite, err := NewSuite(SuiteSpec{Variants: variants, Parallelism: 1})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	report, err := suite.Run()
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("v%d", failAt)) {
		t.Fatalf("Run error = %v, want one naming variant v%d", err, failAt)
	}
	if report == nil {
		t.Fatal("Run returned a nil report alongside the error; completed variants were discarded")
	}
	// Sequential execution stops claiming after the failure: the delivered
	// results are exactly the completed prefix plus the failed variant.
	if report.Len() != failAt+1 {
		t.Fatalf("partial report has %d variants, want %d", report.Len(), failAt+1)
	}
	for i := 0; i < failAt; i++ {
		v := report.Variants[i]
		if v.Err != nil || v.Report == nil {
			t.Errorf("completed variant %d carried Err=%v Report=%v", i, v.Err, v.Report)
		}
	}
	last := report.Variants[failAt]
	if last.Err == nil || last.Report != nil {
		t.Errorf("failed variant carried Err=%v Report=%v, want recorded error and nil report", last.Err, last.Report)
	}

	// The exports skip the failed variant's rows but keep the completed ones.
	var csvBuf bytes.Buffer
	if err := report.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV on partial report: %v", err)
	}
	if got := strings.Count(csvBuf.String(), "\n"); got != failAt+1 {
		t.Errorf("partial CSV has %d lines, want %d (header + completed rows)", got, failAt+1)
	}

	// Streamed aggregation of the same failing suite mirrors the partial
	// report byte-for-byte, JSON included (failed variants export with a
	// null report).
	var wantJSON bytes.Buffer
	if err := report.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("WriteJSON on partial report: %v", err)
	}
	streamSuite, err := NewSuite(SuiteSpec{Variants: variants, Parallelism: 1})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	var gotJSON bytes.Buffer
	agg := NewSuiteAggregator(SuiteAggregatorOptions{JSON: &gotJSON})
	meta, err := streamSuite.RunStream(agg.Consume())
	if err == nil {
		t.Fatal("RunStream on a failing suite returned nil error")
	}
	if err := agg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if meta.Variants != failAt+1 || meta.Failed != 1 {
		t.Errorf("RunMeta = %+v, want %d attempted, 1 failed", meta, failAt+1)
	}
	if got := agg.Failures(); len(got) != 1 || !strings.Contains(got[0].Error(), "boom") {
		t.Errorf("aggregator failures = %v, want the single boom error", got)
	}
	if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
		t.Errorf("streamed JSON of a failing suite differs from the in-memory partial export:\n got %q\nwant %q",
			gotJSON.String(), wantJSON.String())
	}
}

// TestSuiteStreamBoundsInFlightVariants pins the O(Parallelism) retention
// bound: with a streaming consumer, a worker may not start variant i until
// i < delivered+Parallelism. While variant 0 is stuck, at most Parallelism
// variants may have started — the unwindowed path would let spare workers
// race ahead and buffer every later report.
func TestSuiteStreamBoundsInFlightVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	const n, workers = 6, 2
	started := make(chan int, n)
	gate := make(chan struct{})
	variants := make([]Variant, n)
	for i := range variants {
		i := i
		spec := suiteBaseSpec()
		spec.Seed = int64(2000 + i)
		variants[i] = Variant{
			Name: fmt.Sprintf("v%d", i),
			Spec: spec,
			Configure: func(*Scenario) error {
				started <- i
				if i == 0 {
					<-gate // hold the head variant in flight
				}
				return nil
			},
		}
	}
	suite, err := NewSuite(SuiteSpec{Variants: variants, Parallelism: workers})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}

	type outcome struct {
		order []string
		meta  RunMeta
		err   error
	}
	done := make(chan outcome, 1)
	go func() {
		var order []string
		meta, err := suite.RunStream(func(v VariantResult) error {
			order = append(order, v.Name)
			return nil
		})
		done <- outcome{order, meta, err}
	}()

	// The first `workers` variants start...
	inFlight := map[int]bool{}
	for len(inFlight) < workers {
		select {
		case i := <-started:
			inFlight[i] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d variants started, want %d", len(inFlight), workers)
		}
	}
	for i := 0; i < workers; i++ {
		if !inFlight[i] {
			t.Errorf("variant %d not among the first started %v", i, inFlight)
		}
	}
	// ...and no further variant may start while variant 0 blocks delivery.
	select {
	case i := <-started:
		t.Errorf("variant %d started beyond the delivery window while variant 0 was in flight", i)
	case <-time.After(300 * time.Millisecond):
	}

	close(gate)
	out := <-done
	if out.err != nil {
		t.Fatalf("RunStream: %v", out.err)
	}
	if out.meta.Variants != n || out.meta.Failed != 0 {
		t.Errorf("RunMeta = %+v, want %d variants, 0 failed", out.meta, n)
	}
	// Delivery is in variant order regardless of completion order.
	for i, name := range out.order {
		if want := fmt.Sprintf("v%d", i); name != want {
			t.Fatalf("delivery order %v, want v0..v%d in order", out.order, n-1)
		}
	}
	if len(out.order) != n {
		t.Fatalf("delivered %d results, want %d", len(out.order), n)
	}
}

// TestSuiteAggregatorEmptyAndClosed covers the aggregator's edges without
// running simulations: an empty aggregate still emits well-formed exports,
// and Add after Close is an error.
func TestSuiteAggregatorEmptyAndClosed(t *testing.T) {
	var csvBuf, jsonBuf bytes.Buffer
	agg := NewSuiteAggregator(SuiteAggregatorOptions{CSV: &csvBuf, JSON: &jsonBuf})
	if err := agg.Close(); err != nil {
		t.Fatalf("Close on empty aggregator: %v", err)
	}
	if got, want := jsonBuf.String(), "{\n  \"Variants\": []\n}\n"; got != want {
		t.Errorf("empty JSON = %q, want %q", got, want)
	}
	var empty bytes.Buffer
	if err := (&SuiteReport{Variants: []VariantResult{}}).WriteJSON(&empty); err != nil {
		t.Fatalf("WriteJSON on empty report: %v", err)
	}
	if jsonBuf.String() != empty.String() {
		t.Errorf("empty streamed JSON %q differs from empty in-memory export %q", jsonBuf.String(), empty.String())
	}
	if !strings.HasPrefix(csvBuf.String(), "variant,") {
		t.Errorf("empty CSV missing header: %q", csvBuf.String())
	}
	if err := agg.Add(VariantResult{Name: "late"}); err == nil {
		t.Error("Add after Close succeeded")
	}
	if err := agg.Close(); err == nil {
		t.Error("Close after failed Add returned nil; the sink error must be sticky")
	}
}
