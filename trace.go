package autonosql

import (
	"fmt"
	"io"
	"os"
	"time"

	"autonosql/internal/workload"
)

// WorkloadTrace is a recorded client arrival stream: every operation of a run
// with its virtual arrival time, issuing tenant and key, decoupled from the
// random streams that produced it. Record one with Scenario.RecordTrace (or
// the -record-trace CLI flag), persist it with WriteFile, and replay it by
// setting ScenarioSpec.Replay — the same arrivals then run against any
// controller configuration, making cross-controller comparisons exact rather
// than seed-matched.
//
// The file format is JSON lines: a header object
// {"v":1,"tenants":["gold","bronze"]} followed by one object per arrival
// {"t":<ns>,"tn":"gold","op":"r"|"w","k":<key index>}.
type WorkloadTrace struct {
	trace *workload.Trace
}

// ParseWorkloadTrace reads a trace in the JSON-lines format. Malformed input
// — bad JSON, unknown tenants, negative or out-of-order times, bad opcodes —
// is an error, never a panic.
func ParseWorkloadTrace(r io.Reader) (*WorkloadTrace, error) {
	t, err := workload.ParseTrace(r)
	if err != nil {
		return nil, fmt.Errorf("autonosql: %w", err)
	}
	return &WorkloadTrace{trace: t}, nil
}

// ReadWorkloadTraceFile reads a trace file in the JSON-lines format.
func ReadWorkloadTraceFile(path string) (*WorkloadTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("autonosql: reading trace: %w", err)
	}
	defer f.Close()
	t, err := ParseWorkloadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return t, nil
}

// Encode writes the trace in its canonical JSON-lines form.
func (t *WorkloadTrace) Encode(w io.Writer) error {
	if err := workload.EncodeTrace(t.trace, w); err != nil {
		return fmt.Errorf("autonosql: %w", err)
	}
	return nil
}

// WriteFile writes the trace to path in its canonical JSON-lines form.
func (t *WorkloadTrace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("autonosql: writing trace: %w", err)
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("autonosql: writing trace: %w", err)
	}
	return nil
}

// TenantNames returns the trace's tenant population in declaration order
// (empty for a single anonymous workload).
func (t *WorkloadTrace) TenantNames() []string {
	return append([]string(nil), t.trace.Tenants...)
}

// EventCount returns the number of recorded arrivals.
func (t *WorkloadTrace) EventCount() int { return len(t.trace.Events) }

// Scale returns a copy of the trace with every arrival time multiplied by
// factor: factor > 1 stretches the trace (lower arrival rate), factor < 1
// compresses it. A factor of exactly 1 returns a bit-for-bit copy whose
// replay is byte-identical to the original's; other factors round scaled
// times to whole nanoseconds, clamped monotone, so the result always
// validates.
func (t *WorkloadTrace) Scale(factor float64) (*WorkloadTrace, error) {
	scaled, err := t.trace.Scale(factor)
	if err != nil {
		return nil, fmt.Errorf("autonosql: %w", err)
	}
	return &WorkloadTrace{trace: scaled}, nil
}

// Duration returns the virtual time of the last recorded arrival.
func (t *WorkloadTrace) Duration() time.Duration { return t.trace.Duration() }

// matches checks the trace's tenant population against a spec's tenant
// declarations: same names, same order. Replaying a gold+bronze trace into a
// scenario that declares different tenants would silently misattribute
// traffic, so it is a validation error instead.
func (t *WorkloadTrace) matches(tenants []TenantSpec) error {
	if t == nil || t.trace == nil {
		return fmt.Errorf("trace is empty")
	}
	if err := t.trace.Validate(); err != nil {
		return err
	}
	if len(t.trace.Tenants) != len(tenants) {
		return fmt.Errorf("trace declares %d tenants, spec declares %d", len(t.trace.Tenants), len(tenants))
	}
	for i, ts := range tenants {
		if t.trace.Tenants[i] != ts.Name {
			return fmt.Errorf("trace tenant %d is %q, spec declares %q", i, t.trace.Tenants[i], ts.Name)
		}
	}
	return nil
}

// eventsFor returns one tenant's recorded arrivals in fire order.
func (t *WorkloadTrace) eventsFor(tenant string) []workload.TraceEvent {
	return t.trace.EventsFor(tenant)
}

// NamedTrace is a recorded trace used as a suite axis: every variant on the
// trace value replays the same arrivals.
type NamedTrace struct {
	// Name identifies the trace in variant names and report rows.
	Name string
	// Trace is the recorded arrival stream variants replay.
	Trace *WorkloadTrace
}
