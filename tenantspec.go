package autonosql

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"autonosql/internal/tenant"
)

// SLAClass names a per-tenant service class: gold, silver or bronze. Each
// class maps to a preset per-tenant SLA (window, latency and availability
// bounds) and penalty/compensation rates; gold is the strictest and most
// expensive to violate, bronze the loosest and cheapest.
type SLAClass string

// Supported SLA classes.
const (
	// SLAGold is the premium class. While any gold tenant is in violation,
	// the smart controller refuses to scale the cluster in.
	SLAGold SLAClass = "gold"
	// SLASilver is the standard class.
	SLASilver SLAClass = "silver"
	// SLABronze is the best-effort class.
	SLABronze SLAClass = "bronze"
)

// toInternal maps the public class name onto the tenant subsystem's class.
func (c SLAClass) toInternal() (tenant.Class, error) {
	return tenant.ParseClass(string(c))
}

// TenantSpec describes one named tenant of a multi-tenant scenario: its SLA
// class and its own client workload. Tenants share the cluster and the store
// but drive disjoint slices of the key space, and every operation they issue
// is attributed to them in the report.
type TenantSpec struct {
	// Name identifies the tenant in reports, series names and the controller
	// decision log. Names must be unique within a scenario.
	Name string
	// Class selects the tenant's SLA class (gold, silver or bronze).
	Class SLAClass
	// Workload is the tenant's offered traffic. Keyspace zero defaults to
	// 10000 keys; the slice each tenant works in is automatically offset so
	// tenants never share keys.
	Workload WorkloadSpec
}

// finiteNonNegative reports whether v is a finite number >= 0. Plain range
// comparisons are false for NaN, so a spec carrying NaN (or +Inf, which
// would collapse every inter-arrival gap to the minimum and flood the event
// queue) must be rejected explicitly.
func finiteNonNegative(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// validate reports whether the tenant spec is well formed.
func (t TenantSpec) validate() error {
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("tenant has no name")
	}
	if _, err := t.Class.toInternal(); err != nil {
		return fmt.Errorf("tenant %q: %w", t.Name, err)
	}
	w := t.Workload
	if !finiteNonNegative(w.BaseOpsPerSec) || !finiteNonNegative(w.PeakOpsPerSec) {
		return fmt.Errorf("tenant %q: offered rates must be finite and non-negative", t.Name)
	}
	if math.IsNaN(w.ReadFraction) || w.ReadFraction < 0 || w.ReadFraction > 1 {
		return fmt.Errorf("tenant %q: ReadFraction must be within [0, 1]", t.Name)
	}
	if w.Keyspace < 0 {
		return fmt.Errorf("tenant %q: Keyspace must be non-negative", t.Name)
	}
	switch w.Pattern {
	case "", LoadConstant, LoadStep, LoadDiurnal, LoadSpike, LoadDiurnalSpike:
	default:
		return fmt.Errorf("tenant %q: unknown load pattern %q", t.Name, w.Pattern)
	}
	switch w.Keys {
	case "", KeysUniform, KeysZipfian, KeysLatest:
	default:
		return fmt.Errorf("tenant %q: unknown key distribution %q", t.Name, w.Keys)
	}
	return nil
}

// maxTenants bounds the number of tenants one scenario may declare; it
// protects the event queue from pathological fuzz inputs, not a realistic
// configuration.
const maxTenants = 64

// validateTenants checks a scenario's tenant list as a whole.
func validateTenants(tenants []TenantSpec) error {
	if len(tenants) > maxTenants {
		return fmt.Errorf("too many tenants (%d, max %d)", len(tenants), maxTenants)
	}
	seen := make(map[string]struct{}, len(tenants))
	for i, t := range tenants {
		if err := t.validate(); err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		if _, dup := seen[t.Name]; dup {
			return fmt.Errorf("duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = struct{}{}
	}
	return nil
}

// ParseTenantSpecs parses the comma-separated -tenants DSL, one tenant per
// element:
//
//	class:pattern:base[:peak=P][:read=F][:keys=K][:name=N]
//
// where class is gold, silver or bronze, pattern is a load pattern
// (constant, step, diurnal, spike, diurnal+spike) and base is the offered
// base rate in ops/s. Options: peak rate for non-constant patterns, read
// fraction (default 0.5), keyspace size, and an explicit tenant name (the
// default name is the class, suffixed with an ordinal when repeated).
// Examples:
//
//	gold:diurnal:2000,bronze:constant:500
//	gold:constant:1500:name=checkout,bronze:spike:300:peak=3000:read=0.9
//
// An empty string parses to no tenants (single-tenant behaviour). Every list
// the parser accepts passes ScenarioSpec validation.
func ParseTenantSpecs(s string) ([]TenantSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var specs []TenantSpec
	nameCount := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, err := parseTenantSpec(part)
		if err != nil {
			return nil, fmt.Errorf("autonosql: tenant %q: %w", part, err)
		}
		if spec.Name == "" {
			base := string(spec.Class)
			nameCount[base]++
			if n := nameCount[base]; n > 1 {
				spec.Name = fmt.Sprintf("%s%d", base, n)
			} else {
				spec.Name = base
			}
		}
		specs = append(specs, spec)
	}
	if err := validateTenants(specs); err != nil {
		return nil, fmt.Errorf("autonosql: tenants: %w", err)
	}
	return specs, nil
}

func parseTenantSpec(s string) (TenantSpec, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 3 {
		return TenantSpec{}, fmt.Errorf("want class:pattern:base, got %d fields", len(fields))
	}
	class, err := tenant.ParseClass(fields[0])
	if err != nil {
		return TenantSpec{}, err
	}
	spec := TenantSpec{
		Class: SLAClass(class),
		Workload: WorkloadSpec{
			Pattern:      LoadPattern(strings.ToLower(strings.TrimSpace(fields[1]))),
			ReadFraction: 0.5,
		},
	}
	switch spec.Workload.Pattern {
	case LoadConstant, LoadStep, LoadDiurnal, LoadSpike, LoadDiurnalSpike:
	default:
		return TenantSpec{}, fmt.Errorf("unknown load pattern %q", fields[1])
	}
	base, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
	if err != nil {
		return TenantSpec{}, fmt.Errorf("base rate: %w", err)
	}
	if base < 0 {
		return TenantSpec{}, fmt.Errorf("base rate %v must be non-negative", base)
	}
	spec.Workload.BaseOpsPerSec = base
	for _, opt := range fields[3:] {
		opt = strings.TrimSpace(opt)
		switch {
		case strings.HasPrefix(opt, "peak="):
			peak, err := strconv.ParseFloat(opt[5:], 64)
			if err != nil || peak < 0 {
				return TenantSpec{}, fmt.Errorf("peak rate %q must be a non-negative number", opt)
			}
			spec.Workload.PeakOpsPerSec = peak
		case strings.HasPrefix(opt, "read="):
			frac, err := strconv.ParseFloat(opt[5:], 64)
			if err != nil || frac < 0 || frac > 1 {
				return TenantSpec{}, fmt.Errorf("read fraction %q must be within [0, 1]", opt)
			}
			spec.Workload.ReadFraction = frac
		case strings.HasPrefix(opt, "keys="):
			keys, err := strconv.Atoi(opt[5:])
			if err != nil || keys < 0 {
				return TenantSpec{}, fmt.Errorf("keyspace %q must be a non-negative integer", opt)
			}
			spec.Workload.Keyspace = keys
		case strings.HasPrefix(opt, "name="):
			name := strings.TrimSpace(opt[5:])
			if name == "" {
				return TenantSpec{}, fmt.Errorf("empty tenant name")
			}
			spec.Name = name
		default:
			return TenantSpec{}, fmt.Errorf("unknown option %q (want peak=, read=, keys= or name=)", opt)
		}
	}
	return spec, nil
}

// TenantMix is a named tenant population used as a suite axis, analogous to
// SLATier and FaultProfile on their axes.
type TenantMix struct {
	// Name identifies the mix in variant names and report rows.
	Name string
	// Tenants is the tenant list applied to variants on this mix; empty
	// keeps single-tenant behaviour.
	Tenants []TenantSpec
}

// DefaultTenantMixes returns the canonical named tenant populations the
// suite runner and CLI expose: none (single-tenant), gold-bronze (a premium
// diurnal service sharing the cluster with a best-effort constant batch
// load) and three-tier (gold diurnal + silver constant + bronze bursty).
func DefaultTenantMixes() []TenantMix {
	return []TenantMix{
		{Name: "none"},
		{Name: "gold-bronze", Tenants: []TenantSpec{
			{Name: "gold", Class: SLAGold, Workload: WorkloadSpec{
				Pattern: LoadDiurnal, BaseOpsPerSec: 1200, PeakOpsPerSec: 2400, ReadFraction: 0.6,
			}},
			{Name: "bronze", Class: SLABronze, Workload: WorkloadSpec{
				Pattern: LoadConstant, BaseOpsPerSec: 800, ReadFraction: 0.2,
			}},
		}},
		{Name: "three-tier", Tenants: []TenantSpec{
			{Name: "gold", Class: SLAGold, Workload: WorkloadSpec{
				Pattern: LoadDiurnal, BaseOpsPerSec: 1000, PeakOpsPerSec: 2000, ReadFraction: 0.6,
			}},
			{Name: "silver", Class: SLASilver, Workload: WorkloadSpec{
				Pattern: LoadConstant, BaseOpsPerSec: 700, ReadFraction: 0.5,
			}},
			{Name: "bronze", Class: SLABronze, Workload: WorkloadSpec{
				Pattern: LoadSpike, BaseOpsPerSec: 300, PeakOpsPerSec: 2500, ReadFraction: 0.2,
			}},
		}},
	}
}

// LookupTenantMix returns the default mix with the given name.
func LookupTenantMix(name string) (TenantMix, bool) {
	for _, m := range DefaultTenantMixes() {
		if m.Name == name {
			return m, true
		}
	}
	return TenantMix{}, false
}

// tenantSeriesName builds the per-tenant report series key, e.g.
// "tenant/gold/window_p95_ms".
func tenantSeriesName(tenantName, series string) string {
	return "tenant/" + tenantName + "/" + series
}
