module autonosql

go 1.24
