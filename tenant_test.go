package autonosql_test

// Multi-tenant determinism and behaviour tests: a golden fingerprint for a
// two-tenant scenario, the regression guarantee that an empty Tenants list
// reproduces the existing single-tenant goldens byte-for-byte, suite
// equivalence over a TenantMixes axis, and unit coverage of the -tenants DSL
// parser and the tenant report surfaces.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"autonosql"
)

// twoTenantSpec is the canonical gold-diurnal + bronze-bursty scenario the
// golden and behaviour tests share.
func twoTenantSpec(seed int64, mode autonosql.ControllerMode) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = 90 * time.Second
	spec.Cluster.InitialNodes = 3
	spec.Cluster.NodeOpsPerSec = 2500
	spec.Controller.Mode = mode
	spec.Tenants = []autonosql.TenantSpec{
		{Name: "gold", Class: autonosql.SLAGold, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadDiurnal, BaseOpsPerSec: 800, PeakOpsPerSec: 1400, ReadFraction: 0.6,
		}},
		{Name: "bronze", Class: autonosql.SLABronze, Workload: autonosql.WorkloadSpec{
			Pattern: autonosql.LoadSpike, BaseOpsPerSec: 300, PeakOpsPerSec: 1800, ReadFraction: 0.2,
			Keyspace: 4000,
		}},
	}
	return spec
}

// TestGoldenScenarioTwoTenants pins the multi-tenant path bit-for-bit: per
// tenant generators over disjoint key slices, tagged store ground truth,
// per-tenant SLA tracking and the per-tenant report sections.
func TestGoldenScenarioTwoTenants(t *testing.T) {
	rep := runGoldenScenario(t, twoTenantSpec(4711, autonosql.ControllerNone))
	if len(rep.Tenants) != 2 {
		t.Fatalf("report has %d tenant sections, want 2", len(rep.Tenants))
	}
	checkGolden(t, "scenario_twotenants_seed4711", fingerprintReport(rep))
}

// TestEmptyTenantsMatchesSingleTenantGolden pins the back-compat contract: a
// spec with an explicitly empty (non-nil) tenant list must reproduce the
// recorded single-tenant golden byte-for-byte.
func TestEmptyTenantsMatchesSingleTenantGolden(t *testing.T) {
	spec := goldenSpec(42, autonosql.ControllerNone)
	spec.Tenants = []autonosql.TenantSpec{}
	rep := runGoldenScenario(t, spec)
	if len(rep.Tenants) != 0 {
		t.Fatalf("empty tenant list produced %d tenant sections", len(rep.Tenants))
	}
	checkGolden(t, "scenario_none_seed42", fingerprintReport(rep))
}

// TestTwoTenantReportContents checks the acceptance-level report surface: a
// gold-diurnal + bronze-bursty run produces per-tenant window percentiles,
// violation accounting and penalty cost.
func TestTwoTenantReportContents(t *testing.T) {
	rep := runGoldenScenario(t, twoTenantSpec(99, autonosql.ControllerNone))
	if len(rep.Tenants) != 2 {
		t.Fatalf("report has %d tenant sections, want 2", len(rep.Tenants))
	}
	var totalReads, totalWrites uint64
	for _, tr := range rep.Tenants {
		if tr.Name == "" || tr.Class == "" {
			t.Errorf("tenant section missing identity: %+v", tr)
		}
		if tr.Reads == 0 || tr.Writes == 0 {
			t.Errorf("tenant %s recorded no traffic: reads=%d writes=%d", tr.Name, tr.Reads, tr.Writes)
		}
		if tr.Window.P95 <= 0 || tr.Window.P95 < tr.Window.P50 {
			t.Errorf("tenant %s window percentiles malformed: p50=%v p95=%v", tr.Name, tr.Window.P50, tr.Window.P95)
		}
		if tr.ComplianceRatio < 0 || tr.ComplianceRatio > 1 {
			t.Errorf("tenant %s compliance %v outside [0,1]", tr.Name, tr.ComplianceRatio)
		}
		if tr.PenaltyCost < 0 || tr.CompensationCost < 0 {
			t.Errorf("tenant %s negative cost: penalty=%v compensation=%v", tr.Name, tr.PenaltyCost, tr.CompensationCost)
		}
		totalReads += tr.Reads
		totalWrites += tr.Writes
	}
	// Tenant-attributed traffic must exactly account for all client
	// operations (probes are untagged and excluded from Reads/Writes... the
	// aggregate counters include probe writes, so tenant totals are a lower
	// bound that must still cover the overwhelming majority).
	if totalReads > rep.Reads || totalWrites > rep.Writes {
		t.Errorf("tenant totals exceed aggregate: %d/%d reads, %d/%d writes",
			totalReads, rep.Reads, totalWrites, rep.Writes)
	}
	if rep.Reads-totalReads > rep.Reads/10 {
		t.Errorf("more than 10%% of reads unattributed: %d of %d", rep.Reads-totalReads, rep.Reads)
	}
	// Per-tenant series exist alongside the aggregate ones.
	for _, name := range []string{"tenant/gold/window_p95_ms", "tenant/bronze/window_p95_ms"} {
		if len(rep.Series[name]) == 0 {
			t.Errorf("missing per-tenant series %q", name)
		}
	}
	// The rendered report carries the tenant sections.
	if s := rep.String(); !strings.Contains(s, "tenant gold(gold)") || !strings.Contains(s, "tenant bronze(bronze)") {
		t.Errorf("Report.String lacks tenant sections:\n%s", s)
	}
}

// TestTenantSuiteConcurrentEqualsSequential pins that the TenantMixes axis
// keeps the suite runner's core guarantee: a concurrent run produces
// bit-for-bit the same reports as a sequential one.
func TestTenantSuiteConcurrentEqualsSequential(t *testing.T) {
	base := autonosql.DefaultScenarioSpec()
	base.Seed = 11
	base.Duration = 45 * time.Second
	base.Workload.BaseOpsPerSec = 1500
	suiteSpec := autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{autonosql.ControllerNone, autonosql.ControllerSmart},
			TenantMixes: autonosql.DefaultTenantMixes()[:2], // none, gold-bronze
		},
	}
	fingerprint := func(parallelism int) string {
		suiteSpec.Parallelism = parallelism
		suite, err := autonosql.NewSuite(suiteSpec)
		if err != nil {
			t.Fatalf("NewSuite: %v", err)
		}
		rep, err := suite.Run()
		if err != nil {
			t.Fatalf("suite.Run: %v", err)
		}
		var b strings.Builder
		for _, v := range rep.Variants {
			fmt.Fprintf(&b, "== variant %s\n%s", v.Name, fingerprintReport(v.Report))
		}
		return b.String()
	}
	sequential := fingerprint(1)
	concurrent := fingerprint(4)
	if sequential != concurrent {
		t.Fatal("tenant suite diverged between sequential and concurrent execution")
	}
}

// TestTenantMixAxisExpansion checks the grid axis: names carry the mix, the
// tenant lists land on the variants, and the none mix keeps single-tenant
// behaviour.
func TestTenantMixAxisExpansion(t *testing.T) {
	base := autonosql.DefaultScenarioSpec()
	grid := autonosql.Grid{
		Controllers: []autonosql.ControllerMode{autonosql.ControllerNone},
		TenantMixes: autonosql.DefaultTenantMixes(),
	}
	variants := autonosql.ExpandGrid(base, grid)
	if len(variants) != 3 {
		t.Fatalf("expanded %d variants, want 3", len(variants))
	}
	wantNames := []string{
		"ctl=none tenants=none",
		"ctl=none tenants=gold-bronze",
		"ctl=none tenants=three-tier",
	}
	wantTenants := []int{0, 2, 3}
	for i, v := range variants {
		if v.Name != wantNames[i] {
			t.Errorf("variant %d name %q, want %q", i, v.Name, wantNames[i])
		}
		if len(v.Spec.Tenants) != wantTenants[i] {
			t.Errorf("variant %q has %d tenants, want %d", v.Name, len(v.Spec.Tenants), wantTenants[i])
		}
		if err := v.Spec.Validate(); err != nil {
			t.Errorf("variant %q spec invalid: %v", v.Name, err)
		}
	}
}

// TestParseTenantSpecs covers the -tenants DSL.
func TestParseTenantSpecs(t *testing.T) {
	t.Run("issue example", func(t *testing.T) {
		specs, err := autonosql.ParseTenantSpecs("gold:diurnal:2000,bronze:constant:500")
		if err != nil {
			t.Fatalf("ParseTenantSpecs: %v", err)
		}
		if len(specs) != 2 {
			t.Fatalf("parsed %d tenants, want 2", len(specs))
		}
		if specs[0].Name != "gold" || specs[0].Class != autonosql.SLAGold ||
			specs[0].Workload.Pattern != autonosql.LoadDiurnal || specs[0].Workload.BaseOpsPerSec != 2000 {
			t.Errorf("first tenant parsed wrong: %+v", specs[0])
		}
		if specs[1].Name != "bronze" || specs[1].Workload.BaseOpsPerSec != 500 {
			t.Errorf("second tenant parsed wrong: %+v", specs[1])
		}
	})

	t.Run("options and names", func(t *testing.T) {
		specs, err := autonosql.ParseTenantSpecs(
			"gold:constant:1500:name=checkout:read=0.9:keys=5000,gold:spike:300:peak=3000")
		if err != nil {
			t.Fatalf("ParseTenantSpecs: %v", err)
		}
		if specs[0].Name != "checkout" || specs[0].Workload.ReadFraction != 0.9 || specs[0].Workload.Keyspace != 5000 {
			t.Errorf("options not applied: %+v", specs[0])
		}
		if specs[1].Name != "gold" || specs[1].Workload.PeakOpsPerSec != 3000 {
			t.Errorf("second gold tenant parsed wrong: %+v", specs[1])
		}
	})

	t.Run("duplicate default names disambiguated", func(t *testing.T) {
		specs, err := autonosql.ParseTenantSpecs("bronze:constant:100,bronze:constant:200")
		if err != nil {
			t.Fatalf("ParseTenantSpecs: %v", err)
		}
		if specs[0].Name != "bronze" || specs[1].Name != "bronze2" {
			t.Errorf("default names not disambiguated: %q, %q", specs[0].Name, specs[1].Name)
		}
	})

	t.Run("empty is single-tenant", func(t *testing.T) {
		specs, err := autonosql.ParseTenantSpecs("  ")
		if err != nil || specs != nil {
			t.Fatalf("blank input: specs=%v err=%v", specs, err)
		}
	})

	for _, bad := range []string{
		"platinum:constant:100",   // unknown class
		"gold:sawtooth:100",       // unknown pattern
		"gold:constant",           // missing rate
		"gold:constant:abc",       // malformed rate
		"gold:constant:-5",        // negative rate
		"gold:constant:100:wat=1", // unknown option
		"gold:constant:100:read=1.5",
		"gold:constant:Inf",          // non-finite rate would flood the event queue
		"gold:constant:100:peak=NaN", // NaN passes plain range comparisons
		"gold:constant:100:read=NaN",
		"gold:constant:100:name=a,gold:constant:200:name=a", // duplicate names
	} {
		if _, err := autonosql.ParseTenantSpecs(bad); err == nil {
			t.Errorf("ParseTenantSpecs(%q) accepted invalid input", bad)
		}
	}
}

// TestTenantSpecValidation covers ScenarioSpec.Validate over tenant lists.
func TestTenantSpecValidation(t *testing.T) {
	spec := autonosql.DefaultScenarioSpec()
	spec.Tenants = []autonosql.TenantSpec{
		{Name: "a", Class: autonosql.SLAGold, Workload: autonosql.WorkloadSpec{BaseOpsPerSec: 10}},
		{Name: "a", Class: autonosql.SLABronze, Workload: autonosql.WorkloadSpec{BaseOpsPerSec: 10}},
	}
	if err := spec.Validate(); err == nil {
		t.Error("duplicate tenant names validated")
	}
	spec.Tenants = []autonosql.TenantSpec{{Name: "a", Class: "platinum"}}
	if err := spec.Validate(); err == nil {
		t.Error("unknown class validated")
	}
	spec.Tenants = []autonosql.TenantSpec{{Class: autonosql.SLAGold}}
	if err := spec.Validate(); err == nil {
		t.Error("unnamed tenant validated")
	}
	spec.Tenants = []autonosql.TenantSpec{
		{Name: "ok", Class: autonosql.SLASilver, Workload: autonosql.WorkloadSpec{BaseOpsPerSec: 10}},
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("valid tenant list rejected: %v", err)
	}
}

// TestTenantSuiteSurfaces smoke-tests the suite report's tenant table and
// per-tenant CSV export.
func TestTenantSuiteSurfaces(t *testing.T) {
	base := twoTenantSpec(5, autonosql.ControllerNone)
	base.Duration = 30 * time.Second
	suite, err := autonosql.NewSuite(autonosql.SuiteSpec{
		Base: base,
		Grid: autonosql.Grid{Controllers: []autonosql.ControllerMode{autonosql.ControllerNone}},
	})
	if err != nil {
		t.Fatalf("NewSuite: %v", err)
	}
	rep, err := suite.Run()
	if err != nil {
		t.Fatalf("suite.Run: %v", err)
	}
	table := rep.TenantsTable()
	for _, want := range []string{"gold", "bronze", "penalty", "violation min"} {
		if !strings.Contains(table, want) {
			t.Errorf("TenantsTable missing %q:\n%s", want, table)
		}
	}
	var csvOut strings.Builder
	if err := rep.WriteTenantsCSV(&csvOut); err != nil {
		t.Fatalf("WriteTenantsCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 { // header + 2 tenants
		t.Fatalf("tenant CSV has %d lines, want 3:\n%s", len(lines), csvOut.String())
	}
	if !strings.HasPrefix(lines[0], "variant,tenant,class,") {
		t.Errorf("tenant CSV header malformed: %s", lines[0])
	}
}

// TestTenantDecisionLogNamesTenant drives the smart controller in an
// overloaded two-tenant scenario and requires every decision line to name
// the tenant that drove it.
func TestTenantDecisionLogNamesTenant(t *testing.T) {
	spec := twoTenantSpec(7, autonosql.ControllerSmart)
	spec.Duration = 3 * time.Minute
	spec.Cluster.NodeOpsPerSec = 1200 // force pressure so the controller acts
	rep := runGoldenScenario(t, spec)
	if len(rep.Decisions) == 0 {
		t.Fatal("smart controller took no decisions under overload")
	}
	for _, d := range rep.Decisions {
		if !strings.Contains(d, "tenant=") {
			t.Errorf("decision does not name a tenant: %s", d)
		}
	}
}
