package autonosql

import (
	"fmt"
	"time"

	"autonosql/internal/sim"
	"autonosql/internal/store"
	"autonosql/internal/workload"
)

// defaultEpoch is the lockstep window the sharded engine uses when the spec
// leaves Epoch zero. Results are invariant under the epoch length (pinned by
// TestShardEpochInvariance); 10ms balances barrier overhead against mailbox
// buffering for the default workloads.
const defaultEpoch = 10 * time.Millisecond

// shardedRun carries a scenario's sharded-mode machinery: the lockstep
// engine, the home lane (whose Engine is Scenario.engine — store, cluster,
// monitor, control loop, faults, sampler and tenant runtimes all live
// there), and one source lane per workload driver. The drivers are the only
// part of the scenario whose event stream is provably independent of the
// rest of the system — each consumes exclusively its own named random
// streams (the property trace record/replay is built on) — so they are the
// part that runs ahead on other cores, with every generated arrival mailed
// back to the home lane and fired at its exact virtual time.
type shardedRun struct {
	se   *sim.ShardedEngine
	home *sim.Lane
	// driverLanes holds one source lane per workload driver in driver
	// creation order; splice pairs them back up with the drivers at Run.
	driverLanes []*sim.Lane
	// bridges holds the lane bridges splice created, in driver order. Run
	// seeds each one right after the driver Starts so the home engine claims
	// the first-arrival sequence numbers at their single-engine positions.
	bridges []*laneBridge
}

func newShardedRun(spec ScenarioSpec) (*shardedRun, error) {
	epoch := spec.Epoch
	if epoch <= 0 {
		epoch = defaultEpoch
	}
	se, err := sim.NewShardedEngine(epoch, spec.Shards)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling sharded engine: %w", err)
	}
	home, err := se.NewLane(0)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling sharded engine: %w", err)
	}
	return &shardedRun{se: se, home: home}, nil
}

// driverEngine returns the engine the next workload driver schedules on: the
// shared engine in plain mode, a fresh source lane running one epoch ahead
// of the home lane in sharded mode.
func (s *Scenario) driverEngine() (*sim.Engine, error) {
	if s.sharded == nil {
		return s.engine, nil
	}
	lane, err := s.sharded.se.NewLane(1)
	if err != nil {
		return nil, fmt.Errorf("autonosql: assembling sharded engine: %w", err)
	}
	s.sharded.driverLanes = append(s.sharded.driverLanes, lane)
	return lane.Engine(), nil
}

// splice wraps every workload driver's target with a laneBridge pairing it
// with its source lane. It runs at the top of Run — after any RecordTrace
// wrap, so the recorder stays on the home side of the bridge and stamps
// arrivals at their true (home-lane) delivery times. Generators additionally
// get their idle ticks mirrored, so even zero-rate profile re-evaluations
// keep the home engine's allocation order aligned with a single-engine run.
func (sr *shardedRun) splice(s *Scenario) error {
	splice := func(d interface {
		Intercept(func(workload.Target) workload.Target)
	}) *laneBridge {
		if len(sr.bridges) >= len(sr.driverLanes) {
			return nil
		}
		var b *laneBridge
		d.Intercept(func(inner workload.Target) workload.Target {
			b = newLaneBridge(sr.driverLanes[len(sr.bridges)], sr.home, inner)
			return b
		})
		sr.bridges = append(sr.bridges, b)
		return b
	}
	if s.gen != nil {
		if b := splice(s.gen); b != nil {
			s.gen.OnIdleTick(b.mirrorIdleTick)
		}
	}
	if s.source != nil {
		splice(s.source)
	}
	for _, g := range s.tenantGens {
		if b := splice(g); b != nil {
			g.OnIdleTick(b.mirrorIdleTick)
		}
	}
	for _, src := range s.tenantSources {
		splice(src)
	}
	if len(sr.bridges) != len(sr.driverLanes) {
		return fmt.Errorf("autonosql: internal: %d driver lanes for %d drivers", len(sr.driverLanes), len(sr.bridges))
	}
	return nil
}

// laneBridge forwards one workload driver's arrival chain from its source
// lane to the home lane. The driver runs one epoch ahead in virtual time;
// every tick it fires is recorded and handed off at the next barrier, and
// the home lane replays the chain — issue the operation against the real
// target, then claim the sequence number for the following tick — at the
// exact virtual times and heap positions the chain would occupy if the
// driver ran on the home engine itself. Replaying the positions, not just
// the times, is what keeps same-nanosecond ties (an arrival landing on the
// same instant as an ack or a rebalance step) resolving identically to the
// single-heap run: at equal virtual time the plain engine fires the arrival
// before events allocated after the previous tick and after events
// allocated before it, and the reserved sequence numbers reproduce that
// order bit-for-bit.
type laneBridge struct {
	lane   *sim.Lane
	home   *sim.Lane
	target workload.Target

	// free recycles fired tick records. It is popped only by the driver's
	// lane mid-round and refilled only at barriers, while that lane is
	// parked.
	free []*tickRec

	// Home-side chain state, touched only by barrier handoffs and home-lane
	// delivery, which the lockstep protocol orders strictly.
	nextSeq uint64     // reserved seq for the next tick; 0 = already consumed
	queue   []*tickRec // handed-off ticks whose predecessor has not fired yet
	head    int
	done    []*tickRec // fired records awaiting recycling at the next handoff
}

// tickRec is one fired driver tick in flight between lanes: an operation
// (op true) or an idle profile re-evaluation (op false). Both kinds allocate
// the driver's next arrival event, so both must be replayed in the home
// engine's sequence stream.
type tickRec struct {
	bridge *laneBridge
	at     time.Duration
	key    store.Key
	cb     func(store.Result)
	write  bool
	op     bool
}

func newLaneBridge(lane, home *sim.Lane, target workload.Target) *laneBridge {
	return &laneBridge{lane: lane, home: home, target: target}
}

// seed claims the sequence number for the driver's first tick. Run calls it
// right after the driver Starts, mirroring the first-arrival allocation a
// single-engine Start performs at the same point.
func (b *laneBridge) seed() { b.nextSeq = b.home.Engine().ReserveSeq() }

func (b *laneBridge) Read(key store.Key, cb func(store.Result))  { b.send(key, cb, false) }
func (b *laneBridge) Write(key store.Key, cb func(store.Result)) { b.send(key, cb, true) }

func (b *laneBridge) send(key store.Key, cb func(store.Result), write bool) {
	rec := b.newRec()
	rec.at = b.lane.Engine().Now()
	rec.key = key
	rec.cb = cb
	rec.write = write
	rec.op = true
	b.lane.Handoff(b.home, rec.at, handoffTick, rec)
}

// mirrorIdleTick records a generator tick that issued nothing. The tick
// still allocated the driver's next arrival, so the home lane must claim a
// matching sequence number at the matching point.
func (b *laneBridge) mirrorIdleTick() {
	rec := b.newRec()
	rec.at = b.lane.Engine().Now()
	b.lane.Handoff(b.home, rec.at, handoffTick, rec)
}

func (b *laneBridge) newRec() *tickRec {
	if n := len(b.free) - 1; n >= 0 {
		rec := b.free[n]
		b.free = b.free[:n]
		return rec
	}
	return &tickRec{bridge: b}
}

func (b *laneBridge) popQueue() *tickRec {
	if b.head == len(b.queue) {
		return nil
	}
	rec := b.queue[b.head]
	b.queue[b.head] = nil
	b.head++
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
	}
	return rec
}

// handoffTick runs at a barrier drain, with both lanes parked. If the
// previous tick has already fired its reservation is waiting in nextSeq and
// the tick can be scheduled now; otherwise it queues until the predecessor
// claims a sequence number for it in deliverTick.
func handoffTick(arg any, _ time.Duration) {
	rec := arg.(*tickRec)
	b := rec.bridge
	if len(b.done) > 0 {
		// Recycle fired records back to the source side while it is parked.
		b.free = append(b.free, b.done...)
		for i := range b.done {
			b.done[i] = nil
		}
		b.done = b.done[:0]
	}
	if b.nextSeq != 0 {
		b.home.Engine().ScheduleReserved(rec.at, b.nextSeq, deliverTick, rec)
		b.nextSeq = 0
	} else {
		b.queue = append(b.queue, rec)
	}
}

// deliverTick fires on the home lane at the tick's virtual time: issue the
// operation (if any) against the real target, then claim the sequence number
// for the driver's next tick — the same issue-then-schedule order the driver
// itself runs, so every allocation lands at its single-engine position.
func deliverTick(arg any, _ time.Duration) {
	rec := arg.(*tickRec)
	b := rec.bridge
	if rec.op {
		if rec.write {
			b.target.Write(rec.key, rec.cb)
		} else {
			b.target.Read(rec.key, rec.cb)
		}
	}
	seq := b.home.Engine().ReserveSeq()
	if next := b.popQueue(); next != nil {
		b.home.Engine().ScheduleReserved(next.at, seq, deliverTick, next)
	} else {
		b.nextSeq = seq
	}
	rec.key = ""
	rec.cb = nil
	rec.write = false
	rec.op = false
	b.done = append(b.done, rec)
}
