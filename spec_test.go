package autonosql

import (
	"testing"
	"time"
)

func TestDefaultScenarioSpecValidates(t *testing.T) {
	if err := DefaultScenarioSpec().Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

func TestSpecValidationRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ScenarioSpec)
	}{
		{"zero duration", func(s *ScenarioSpec) { s.Duration = 0 }},
		{"negative base rate", func(s *ScenarioSpec) { s.Workload.BaseOpsPerSec = -1 }},
		{"negative peak rate", func(s *ScenarioSpec) { s.Workload.PeakOpsPerSec = -1 }},
		{"read fraction above one", func(s *ScenarioSpec) { s.Workload.ReadFraction = 1.5 }},
		{"no nodes", func(s *ScenarioSpec) { s.Cluster.InitialNodes = 0 }},
		{"no replication", func(s *ScenarioSpec) { s.Store.ReplicationFactor = 0 }},
		{"bad read consistency", func(s *ScenarioSpec) { s.Store.ReadConsistency = "SOMETIMES" }},
		{"bad write consistency", func(s *ScenarioSpec) { s.Store.WriteConsistency = "NEVER" }},
		{"bad controller mode", func(s *ScenarioSpec) { s.Controller.Mode = "clever" }},
		{"bad load pattern", func(s *ScenarioSpec) { s.Workload.Pattern = "sawtooth" }},
		{"bad key distribution", func(s *ScenarioSpec) { s.Workload.Keys = "gaussian" }},
		{"unconstrained sla", func(s *ScenarioSpec) { s.SLA = SLASpec{NodeCostPerHour: 1} }},
		{"negative cost", func(s *ScenarioSpec) { s.SLA.NodeCostPerHour = -1 }},
	}
	for _, tc := range cases {
		spec := DefaultScenarioSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: spec validated but should not", tc.name)
		}
		if _, err := NewScenario(spec); err == nil {
			t.Errorf("%s: NewScenario accepted an invalid spec", tc.name)
		}
	}
}

func TestConsistencyLevelConversion(t *testing.T) {
	levels := []ConsistencyLevel{ConsistencyOne, ConsistencyTwo, ConsistencyQuorum, ConsistencyAll}
	for _, l := range levels {
		internal, err := l.toStore()
		if err != nil {
			t.Fatalf("toStore(%s): %v", l, err)
		}
		if back := consistencyFromStore(internal); back != l {
			t.Errorf("round trip %s -> %v -> %s", l, internal, back)
		}
	}
	// Empty means the store default (ONE).
	if cl, err := ConsistencyLevel("").toStore(); err != nil || cl.String() != "ONE" {
		t.Errorf("empty level = %v, %v; want ONE", cl, err)
	}
	if _, err := ConsistencyLevel("MAYBE").toStore(); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestLoadProfileSelection(t *testing.T) {
	spec := DefaultScenarioSpec()
	spec.Duration = 10 * time.Minute
	spec.Workload.BaseOpsPerSec = 100
	spec.Workload.PeakOpsPerSec = 1000

	cases := []struct {
		pattern  LoadPattern
		at       time.Duration
		min, max float64
	}{
		{LoadConstant, time.Minute, 99, 101},
		{LoadStep, time.Minute, 99, 101},                   // before the step
		{LoadStep, 5*time.Minute + time.Second, 999, 1001}, // inside the step
		{LoadDiurnal, 5 * time.Minute, 900, 1001},          // near the crest
		{LoadSpike, time.Minute, 99, 101},
		{LoadDiurnalSpike, time.Minute, 99, 1100},
	}
	for _, tc := range cases {
		spec.Workload.Pattern = tc.pattern
		rate := spec.loadProfile().Rate(tc.at)
		if rate < tc.min || rate > tc.max {
			t.Errorf("%s at %v: rate = %v, want in [%v, %v]", tc.pattern, tc.at, rate, tc.min, tc.max)
		}
	}
}

func TestControllerConfigDerivation(t *testing.T) {
	spec := DefaultScenarioSpec()
	spec.Cluster.MinNodes = 4
	spec.Cluster.MaxNodes = 12
	spec.Cluster.NodeOpsPerSec = 7000
	spec.Cluster.BootstrapTime = 45 * time.Second
	spec.Controller.Predictive = true
	spec.Controller.AllowConsistencyChanges = false

	cfg := spec.controllerConfig()
	if cfg.MinNodes != 4 || cfg.MaxNodes != 12 {
		t.Errorf("node bounds = %d..%d, want 4..12", cfg.MinNodes, cfg.MaxNodes)
	}
	// The controller's capacity belief is expressed in client operations per
	// second: with a 50/50 mix at RF=3 each client operation costs 2.625 node
	// operations, so a 7000 ops/s node contributes 7000/2.625 client ops/s.
	if cfg.NodeCapacityOpsPerSec < 2666 || cfg.NodeCapacityOpsPerSec > 2667 {
		t.Errorf("node capacity = %v, want ~2666.7 (effective client-op capacity)", cfg.NodeCapacityOpsPerSec)
	}
	if cfg.PredictionHorizon != 90*time.Second {
		t.Errorf("prediction horizon = %v, want 90s (2x bootstrap)", cfg.PredictionHorizon)
	}
	if cfg.EnableConsistencyActions {
		t.Error("consistency actions should be disabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("derived controller config invalid: %v", err)
	}
}

func TestCostModelDefaultsWhenUnspecified(t *testing.T) {
	spec := DefaultScenarioSpec()
	spec.SLA.NodeCostPerHour = 0
	spec.SLA.StaleReadCompensation = 0
	spec.SLA.ViolationPenaltyPerMinute = 0
	m := spec.costModel()
	if m.NodeCostPerHour <= 0 {
		t.Fatal("unspecified cost model should fall back to defaults")
	}
}
