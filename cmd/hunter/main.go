// Command hunter searches for adversarial scenarios: it perturbs a base
// scenario with deterministic seed-derived mutations, hill-climbs toward the
// configuration that maximises a badness objective (gold-tenant SLA violation
// minutes, admission shed storms, cluster-size oscillation, or total priced
// cost) and shrinks the
// winner to a minimal reproducing spec. Findings can be persisted as golden
// spec + trace pairs and re-verified bit-for-bit with -check.
//
// Search:
//
//	hunter -objective gold-violations -seed 1 -rounds 4 -neighbors 6 \
//	       -duration 60s -controller smart \
//	       -tenants "gold:diurnal:800:peak=1400,bronze:spike:300:peak=1800" \
//	       -out testdata/adversarial -name storm1
//
// Regression check over a committed corpus:
//
//	hunter -check testdata/adversarial
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"autonosql"
	"autonosql/internal/hunt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("hunter", flag.ContinueOnError)
	var (
		check       = fs.String("check", "", "verify every committed case in the given directory and exit")
		shards      = fs.Int("shards", 1, "simulation shards per evaluation; a pure performance knob that\nnever affects scores or verification results")
		objective   = fs.String("objective", "gold-violations", "badness objective: gold-violations, shed-storm, oscillation, cost-blowup")
		seed        = fs.Int64("seed", 1, "hunter seed driving the mutation stream")
		rounds      = fs.Int("rounds", 4, "hill-climbing rounds")
		neighbors   = fs.Int("neighbors", 6, "mutated candidates per round")
		parallelism = fs.Int("parallelism", 0, "concurrent evaluations (0 = GOMAXPROCS; never affects results)")
		keep        = fs.Float64("keep", 0.9, "fraction of the worst score a shrunk case must retain")
		outDir      = fs.String("out", "", "directory to persist the found case into (with -name)")
		name        = fs.String("name", "", "case name for -out")

		baseSeed   = fs.Int64("base-seed", 1, "scenario seed of the base spec")
		duration   = fs.Duration("duration", 60*time.Second, "simulated duration of the base spec")
		nodes      = fs.Int("nodes", 3, "initial cluster size")
		nodeOps    = fs.Float64("node-ops", 2500, "per-node sustainable ops/s")
		controller = fs.String("controller", "smart", "controller: none, reactive, smart")
		tenants    = fs.String("tenants", "gold:diurnal:800:peak=1400:read=0.6,bronze:spike:300:peak=1800:read=0.2",
			"base tenant mix (class:pattern:base[:peak=P][:read=F][:keys=K][:name=N], comma-separated)")
		admission = fs.String("admission", "on", "admission control: off | on[:mode=][:frac=][:floor=][:cooldown=][:hold=]")
		faults    = fs.String("faults", "", "base fault plan (kind:start:duration[:n=N][:sev=S], comma-separated)")
		placement = fs.Bool("placement", false, "allow class-aware placement actions")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *check != "" {
		return runCheck(*check, *shards, out)
	}

	obj, err := hunt.ParseObjective(*objective)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 2
	}
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = *baseSeed
	spec.Duration = *duration
	spec.Cluster.InitialNodes = *nodes
	spec.Cluster.NodeOpsPerSec = *nodeOps
	spec.Controller.Mode = autonosql.ControllerMode(*controller)
	tenantSpecs, err := autonosql.ParseTenantSpecs(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 2
	}
	spec.Tenants = tenantSpecs
	admissionSpec, err := autonosql.ParseAdmissionSpec(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 2
	}
	spec.Controller.Admission = admissionSpec
	plan, err := autonosql.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 2
	}
	spec.Faults = plan
	spec.Controller.AllowPlacement = *placement
	spec.Shards = *shards

	cfg := hunt.Config{
		Base:               spec,
		Objective:          obj,
		Seed:               *seed,
		Rounds:             *rounds,
		Neighbors:          *neighbors,
		Parallelism:        *parallelism,
		ShrinkKeepFraction: *keep,
	}
	res, err := hunt.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 1
	}

	fmt.Fprintf(out, "objective:   %s\n", obj)
	fmt.Fprintf(out, "base score:  %s\n", hunt.FormatScore(res.BaseScore))
	fmt.Fprintf(out, "worst score: %s\n", hunt.FormatScore(res.WorstScore))
	fmt.Fprintf(out, "shrunk:      %s after %d evaluations\n", hunt.FormatScore(res.ShrunkScore), res.Evaluations)
	if len(res.Mutations) == 0 {
		fmt.Fprintf(out, "mutations:   none (the base spec is already the worst case found)\n")
	} else {
		fmt.Fprintf(out, "mutations (%d, minimal reproducing set):\n", len(res.Mutations))
		for _, m := range res.Mutations {
			fmt.Fprintf(out, "  - %s\n", m)
		}
	}

	if *outDir != "" {
		if *name == "" {
			fmt.Fprintln(os.Stderr, "hunter: -out requires -name")
			return 2
		}
		c, trace, err := hunt.NewCase(*name, cfg, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
			return 1
		}
		if err := c.Save(*outDir, trace); err != nil {
			fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "saved %s/%s.json (+ trace, %d arrivals)\n", *outDir, *name, trace.EventCount())
	}
	return 0
}

// runCheck verifies every committed case in dir bit-for-bit. Shards is
// forced onto every case spec before verification: committed scores and
// traces must reproduce at any shard count.
func runCheck(dir string, shards int, out *os.File) int {
	cases, err := hunt.LoadCases(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hunter: %v\n", err)
		return 1
	}
	if len(cases) == 0 {
		fmt.Fprintf(os.Stderr, "hunter: no cases under %s\n", dir)
		return 1
	}
	failed := 0
	for _, c := range cases {
		c.Spec.Shards = shards
		if err := c.Verify(dir); err != nil {
			fmt.Fprintf(out, "FAIL %s: %v\n", c.Name, err)
			failed++
			continue
		}
		fmt.Fprintf(out, "ok   %s (%s score %s, %d mutations)\n",
			c.Name, c.Objective, hunt.FormatScore(c.Score), len(c.Mutations))
	}
	if failed > 0 {
		fmt.Fprintf(out, "%d/%d cases failed\n", failed, len(cases))
		return 1
	}
	if !strings.HasSuffix(dir, "/") {
		dir += "/"
	}
	fmt.Fprintf(out, "all %d cases under %s reproduce bit-for-bit\n", len(cases), dir)
	return 0
}
