// Command nosqlsimd hosts autonosql scenarios and suites as jobs behind an
// HTTP/JSON API: submit work, drive its lifecycle (start/pause/resume/
// cancel), stream metric windows as the simulation closes them, and fetch
// the aggregated report once it finishes.
//
//	nosqlsimd -addr :7070
//
//	# submit a scenario and watch it run
//	curl -s localhost:7070/api/jobs -d '{"autostart":true,"scenario":{"Duration":60000000000}}'
//	curl -sN localhost:7070/api/jobs/job-0001/stream
//	curl -s  localhost:7070/api/jobs/job-0001/report
//	curl -s  localhost:7070/api/jobs/job-0001/meta
//
// Scenario and suite-base specs decode onto DefaultScenarioSpec, so a
// submission states only what it overrides; durations are nanosecond
// integers. Reports are byte-identical to offline runs of the same spec —
// the daemon observes simulations, it never perturbs them. Run metadata
// (wall-clock elapsed, parallelism, throughput) deliberately lives in the
// /meta envelope, not the report, so report exports stay determinism-stable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autonosql/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	retain := flag.Int("retain-windows", 4096, "metric windows retained per job for stream replay (0 = unbounded)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nosqlsimd: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Options{RetainWindows: *retain})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("nosqlsimd: listen: %v", err)
	}
	log.Printf("nosqlsimd: serving on http://%s", ln.Addr())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-srv.ShutdownRequested():
		log.Printf("nosqlsimd: shutdown requested over the API")
	case s := <-sig:
		log.Printf("nosqlsimd: received %v", s)
	case err := <-errCh:
		log.Fatalf("nosqlsimd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("nosqlsimd: graceful shutdown: %v", err)
	}
	log.Printf("nosqlsimd: stopped")
}
