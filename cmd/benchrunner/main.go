// Command benchrunner regenerates the experiment suite (E1–E5) derived from
// the paper's research questions and prints the result tables and figures.
//
// Usage:
//
//	benchrunner -exp all            # run every experiment at full scale
//	benchrunner -exp e1,e4 -quick   # run a subset at quick scale
//	benchrunner -list               # list available experiments
//	benchrunner -bench-json .       # record BENCH_<date>.json perf baseline
//	benchrunner -bench-json . -cpus 1,2,4
//	                                # additionally sweep the sharded benchmark
//	                                # across GOMAXPROCS values
//
// The -bench-json mode runs the quick-scale performance benchmarks (one
// whole scenario plus the concurrent quick suite) and writes a
// machine-readable BENCH_<date>.json into the given directory, so the
// repository can track its performance trajectory over time (see
// PERFORMANCE.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autonosql/internal/experiment"
)

// parseCPUList parses the -cpus flag: a comma-separated list of positive
// GOMAXPROCS values. An empty flag yields nil.
func parseCPUList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -cpus entry %q: want positive integers", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	var (
		exps      = fs.String("exp", "all", "comma-separated experiment ids (e1..e5) or 'all'")
		quick     = fs.Bool("quick", false, "run the reduced quick-scale sweep instead of the full one")
		list      = fs.Bool("list", false, "list available experiments and exit")
		benchJSON = fs.String("bench-json", "", "directory to write a BENCH_<date>.json performance baseline into (runs benchmarks instead of experiments)")
		cpus      = fs.String("cpus", "", "comma-separated GOMAXPROCS values to additionally re-run the\nsharded benchmark under in -bench-json mode (e.g. 1,2,4)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cpuList, err := parseCPUList(*cpus)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		return 2
	}

	if *benchJSON != "" {
		path, err := runBenchJSON(*benchJSON, cpuList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-json failed: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
		return 0
	}

	if *list {
		for _, r := range experiment.Runners() {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return 0
	}

	scale := experiment.ScaleFull
	if *quick {
		scale = experiment.ScaleQuick
	}

	var runners []experiment.Runner
	if strings.EqualFold(*exps, "all") {
		runners = experiment.Runners()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			r, ok := experiment.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", id, strings.Join(experiment.IDs(), ", "))
				return 2
			}
			runners = append(runners, r)
		}
	}

	if len(cpuList) > 0 {
		fmt.Fprintln(os.Stderr, "benchrunner: -cpus only applies to -bench-json mode")
		return 2
	}

	fmt.Printf("autonosql experiment suite (%s scale)\n\n", scale)
	for _, r := range runners {
		res, err := r.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.ID, err)
			return 1
		}
		fmt.Println(res.Format())
	}
	return 0
}
