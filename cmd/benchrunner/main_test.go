package main

import (
	"reflect"
	"testing"
)

// TestParseCPUList pins the -cpus flag grammar: a comma-separated list of
// positive integers, whitespace-tolerant, empty means no sweep, and anything
// else is rejected rather than silently skipped.
func TestParseCPUList(t *testing.T) {
	got, err := parseCPUList(" 1, 2,4 ")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("parseCPUList = %v, %v; want [1 2 4]", got, err)
	}
	if got, err := parseCPUList(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"0", "-1", "two", "1,,2", "1;2"} {
		if _, err := parseCPUList(bad); err == nil {
			t.Errorf("parseCPUList(%q) accepted", bad)
		}
	}
}
