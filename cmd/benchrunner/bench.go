package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"autonosql"
)

// benchSchema identifies the BENCH_*.json layout so downstream tooling can
// detect format changes.
const benchSchema = "autonosql-bench/v1"

// benchResult is one recorded benchmark in the JSON output.
type benchResult struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// suiteResult summarises the quick-suite throughput measurement.
type suiteResult struct {
	Name            string  `json:"name"`
	Scenarios       int     `json:"scenarios"`
	ElapsedMs       float64 `json:"elapsed_ms"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
	Parallelism     int     `json:"parallelism"`
}

// benchFile is the top-level BENCH_<date>.json document.
type benchFile struct {
	Schema     string        `json:"schema"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"go_os"`
	GOARCH     string        `json:"go_arch"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
	Suite      suiteResult   `json:"suite"`
}

// quickScenarioSpec is the fixed quick-scale scenario every recorded
// trajectory point measures, so BENCH files are comparable across commits.
func quickScenarioSpec(seed int64) autonosql.ScenarioSpec {
	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = seed
	spec.Duration = 30 * time.Second
	spec.Workload.BaseOpsPerSec = 2000
	spec.Controller.Mode = autonosql.ControllerNone
	// Self-profiling reads counters the engine maintains anyway, so the
	// report's pool/heap/lockstep figures ride along at no measured cost.
	spec.Observe = &autonosql.ObserveSpec{Profile: true}
	return spec
}

// profileExtras folds a report's engine self-profile into a benchmark's
// extra columns.
func profileExtras(extra map[string]float64, p *autonosql.ProfileReport) {
	if p == nil {
		return
	}
	if lookups := p.PoolHits + p.PoolMisses; lookups > 0 {
		extra["pool_hit_rate"] = float64(p.PoolHits) / float64(lookups)
	}
	extra["heap_peak"] = float64(p.HeapPeak)
	if p.Rounds > 0 {
		extra["lockstep_rounds"] = float64(p.Rounds)
		extra["mail_drained"] = float64(p.MailDrained)
	}
}

// runBenchJSON measures the quick-scale benchmarks and writes
// BENCH_<date>.json into dir. cpus lists extra GOMAXPROCS values to re-run
// the sharded benchmark under, each recorded as its own trajectory entry — on
// a many-core host that is where the lockstep engine's scaling shows; on a
// small host it records, honestly, that there is nothing to scale onto. It
// returns the path written.
func runBenchJSON(dir string, cpus []int) (string, error) {
	out := benchFile{
		Schema:    benchSchema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	// Whole-scenario benchmark: the default quick-scale scenario without a
	// controller, the same shape BenchmarkScenarioThroughput pins in CI.
	var simulatedOps uint64
	var lastProfile *autonosql.ProfileReport
	var benchErr error
	scenarioRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scenario, err := autonosql.NewScenario(quickScenarioSpec(int64(i + 1)))
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			rep, err := scenario.Run()
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			simulatedOps = rep.Reads + rep.Writes
			lastProfile = rep.Profile
		}
	})
	if benchErr != nil {
		return "", fmt.Errorf("scenario benchmark: %w", benchErr)
	}
	nsPerOp := float64(scenarioRes.T.Nanoseconds()) / float64(scenarioRes.N)
	plainOpsPerSec := float64(simulatedOps) / (nsPerOp / 1e9)
	plainExtra := map[string]float64{
		"simulated_ops":         float64(simulatedOps),
		"simulated_ops_per_sec": plainOpsPerSec,
		"shards":                1,
	}
	profileExtras(plainExtra, lastProfile)
	out.Benchmarks = append(out.Benchmarks, benchResult{
		Name:        "scenario_quick",
		Iterations:  scenarioRes.N,
		NsPerOp:     nsPerOp,
		AllocsPerOp: scenarioRes.AllocsPerOp(),
		BytesPerOp:  scenarioRes.AllocedBytesPerOp(),
		Extra:       plainExtra,
	})

	// The same scenario on the sharded engine: workload drivers and the
	// store's entropy streams run on their own lanes across cores. Results
	// are bit-identical to scenario_quick (pinned by TestShardEquivalence);
	// the point records how much wall-clock the lockstep engine buys — or
	// costs — on this machine's core count.
	benchSharded := func(name string) error {
		shardedRes := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec := quickScenarioSpec(int64(i + 1))
				spec.Shards = 4
				scenario, err := autonosql.NewScenario(spec)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				rep, err := scenario.Run()
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				simulatedOps = rep.Reads + rep.Writes
				lastProfile = rep.Profile
			}
		})
		if benchErr != nil {
			return fmt.Errorf("sharded scenario benchmark (%s): %w", name, benchErr)
		}
		shardedNsPerOp := float64(shardedRes.T.Nanoseconds()) / float64(shardedRes.N)
		shardedOpsPerSec := float64(simulatedOps) / (shardedNsPerOp / 1e9)
		shardedExtra := map[string]float64{
			"simulated_ops":         float64(simulatedOps),
			"simulated_ops_per_sec": shardedOpsPerSec,
			"shards":                4,
			"speedup_vs_plain":      shardedOpsPerSec / plainOpsPerSec,
			"gomaxprocs":            float64(runtime.GOMAXPROCS(0)),
		}
		profileExtras(shardedExtra, lastProfile)
		out.Benchmarks = append(out.Benchmarks, benchResult{
			Name:        name,
			Iterations:  shardedRes.N,
			NsPerOp:     shardedNsPerOp,
			AllocsPerOp: shardedRes.AllocsPerOp(),
			BytesPerOp:  shardedRes.AllocedBytesPerOp(),
			Extra:       shardedExtra,
		})
		return nil
	}
	if err := benchSharded("scenario_quick_shards4"); err != nil {
		return "", err
	}
	// The -cpus sweep re-measures the sharded benchmark pinned to each
	// requested GOMAXPROCS, so one BENCH file can hold the 1-CPU overhead and
	// the multi-core speedup side by side. The plain baseline above is NOT
	// re-measured per value: speedup_vs_plain in these entries compares
	// against the ambient-GOMAXPROCS plain run.
	for _, n := range cpus {
		prev := runtime.GOMAXPROCS(n)
		err := benchSharded(fmt.Sprintf("scenario_quick_shards4_cpu%d", n))
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return "", err
		}
	}

	// Quick-suite throughput: a small grid run through the concurrent suite
	// runner, measuring scenarios per wall-clock second.
	suiteSpec := autonosql.SuiteSpec{
		Base: quickScenarioSpec(1),
		Grid: autonosql.Grid{
			Controllers: []autonosql.ControllerMode{
				autonosql.ControllerNone, autonosql.ControllerReactive, autonosql.ControllerSmart,
			},
			ClusterSizes: []int{3, 5},
		},
	}
	suite, err := autonosql.NewSuite(suiteSpec)
	if err != nil {
		return "", fmt.Errorf("building quick suite: %w", err)
	}
	suiteRep, err := suite.Run()
	if err != nil {
		return "", fmt.Errorf("running quick suite: %w", err)
	}
	out.Suite = suiteResult{
		Name:            "suite_quick",
		Scenarios:       suiteRep.Len(),
		ElapsedMs:       float64(suiteRep.Elapsed.Microseconds()) / 1000,
		ScenariosPerSec: suiteRep.ScenariosPerSecond(),
		// The workers the run actually used — the requested bound resolved
		// against GOMAXPROCS and clamped to the variant count — not the
		// machine-wide GOMAXPROCS the earlier schema versions recorded.
		Parallelism: suiteRep.Parallelism,
	}

	// Never clobber an earlier trajectory point recorded on the same day: a
	// same-date baseline gets an ordinal suffix so both points survive.
	path := filepath.Join(dir, "BENCH_"+out.Date+".json")
	for n := 2; ; n++ {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(dir, fmt.Sprintf("BENCH_%s.%d.json", out.Date, n))
	}
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("creating %s: %w", path, err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return "", fmt.Errorf("encoding %s: %w", path, err)
	}
	return path, nil
}
