package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autonosql"
)

func TestDetectTraceCollisions(t *testing.T) {
	spec := autonosql.DefaultScenarioSpec()
	ok := []autonosql.Variant{
		{Name: "pattern=constant ctl=none", Spec: spec},
		{Name: "pattern=constant ctl=smart", Spec: spec},
	}
	if err := detectTraceCollisions(ok); err != nil {
		t.Fatalf("distinct file names rejected: %v", err)
	}
	// Distinct variant names, identical after sanitization: ' ' and '='
	// both map to '_', so "trace=a b" and "trace=a=b" collide.
	colliding := []autonosql.Variant{
		{Name: "trace=a b", Spec: spec},
		{Name: "trace=a=b", Spec: spec},
	}
	err := detectTraceCollisions(colliding)
	if err == nil {
		t.Fatal("colliding trace file names accepted; traces would silently overwrite")
	}
	if !strings.Contains(err.Error(), "trace=a b") || !strings.Contains(err.Error(), "trace=a=b") {
		t.Errorf("collision error %q does not name both variants", err)
	}
}

// runCLI drives run() with output captured to a temp file.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatalf("temp output: %v", err)
	}
	defer out.Close()
	code := run(args, out)
	b, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatalf("reading output: %v", err)
	}
	return code, string(b)
}

func TestStreamAggExportsMatchDefaultPath(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	common := []string{
		"-duration", "20s", "-patterns", "constant", "-controllers", "none,smart",
		"-nodes", "2", "-base", "600", "-peak", "1200",
	}
	defDir, strDir := t.TempDir(), t.TempDir()

	args := append([]string{}, common...)
	args = append(args, "-csv", filepath.Join(defDir, "r.csv"), "-json", filepath.Join(defDir, "r.json"))
	if code, out := runCLI(t, args...); code != 0 {
		t.Fatalf("default run exited %d:\n%s", code, out)
	}

	args = append([]string{}, common...)
	args = append(args, "-stream-agg", "-spill-dir", filepath.Join(strDir, "spill"),
		"-csv", filepath.Join(strDir, "r.csv"), "-json", filepath.Join(strDir, "r.json"))
	code, out := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("streamed run exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "cheapest fully compliant variant") {
		t.Errorf("streamed run output missing the cheapest-compliant line:\n%s", out)
	}

	for _, name := range []string{"r.csv", "r.json"} {
		want, err := os.ReadFile(filepath.Join(defDir, name))
		if err != nil {
			t.Fatalf("reading default %s: %v", name, err)
		}
		got, err := os.ReadFile(filepath.Join(strDir, name))
		if err != nil {
			t.Fatalf("reading streamed %s: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("streamed %s differs from the default path's export", name)
		}
	}
	spilled, err := os.ReadDir(filepath.Join(strDir, "spill"))
	if err != nil {
		t.Fatalf("reading spill dir: %v", err)
	}
	if len(spilled) != 2 {
		t.Errorf("spilled %d files, want one per variant (2)", len(spilled))
	}
}
