// Command suiterunner expands a scenario grid — workload pattern × controller
// mode × cluster size × SLA tier × fault profile × tenant mix × replayed
// trace — into concrete
// variants with deterministic per-variant seeds, runs them concurrently
// across a bounded worker pool and prints the aggregated comparison tables.
// The full suite report can also be exported as CSV (one row per variant,
// plus an optional per-tenant CSV) or JSON (lossless, including the sampled
// time series).
//
// Usage examples:
//
//	suiterunner                                       # default 12-variant grid
//	suiterunner -patterns constant,diurnal,spike -controllers none,smart \
//	    -nodes 3,6 -sla-tiers tight,loose -duration 10m
//	suiterunner -controllers none,smart -faults none,crash,partition
//	suiterunner -controllers reactive,smart -tenant-mixes gold-bronze
//	suiterunner -tenants gold:diurnal:2000,bronze:constant:500 -tenants-csv tenants.csv
//	suiterunner -controllers none,reactive,smart -replay-trace run.trace.jsonl
//	suiterunner -record-trace traces/                 # one trace file per variant
//	suiterunner -csv sweep.csv -json sweep.json       # export the results
//	suiterunner -stream-agg -spill-dir results/       # O(parallelism) memory
//	suiterunner -list                                 # print the grid and exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"autonosql"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("suiterunner", flag.ContinueOnError)
	var (
		seed        = fs.Int64("seed", 1, "base seed; per-variant seeds are derived from it")
		duration    = fs.Duration("duration", 5*time.Minute, "simulated duration per variant")
		patterns    = fs.String("patterns", "constant,diurnal,spike", "comma-separated load patterns to sweep")
		controllers = fs.String("controllers", "none,smart", "comma-separated controller modes to sweep")
		nodes       = fs.String("nodes", "3,6", "comma-separated initial cluster sizes to sweep")
		slaTiers    = fs.String("sla-tiers", "", "comma-separated SLA tiers to sweep (tight, default, loose); empty keeps the base SLA")
		faultAxis   = fs.String("faults", "", "comma-separated fault profiles to sweep (none, crash, partition, slow, storm),\nscaled to the run duration; empty keeps runs fault-free")
		tenants     = fs.String("tenants", "", "named tenants applied to every variant, comma-separated\nclass:pattern:base[:peak=P][:read=F][:keys=K][:name=N]")
		admission   = fs.String("admission", "", "tenant admission control for smart variants:\noff | on[:frac=F][:floor=R][:cooldown=D][:hold=D]")
		placement   = fs.Bool("placement", false, "allow smart variants to dedicate nodes to an SLA class")
		mixAxis     = fs.String("tenant-mixes", "", "comma-separated tenant mixes to sweep (none, gold-bronze, three-tier);\nempty keeps the base tenants")
		tenantsCSV  = fs.String("tenants-csv", "", "write the per-tenant results as CSV to this file")
		repeats     = fs.Int("repeats", 1, "runs per grid cell with distinct derived seeds")
		shardAxis   = fs.String("shards", "", "comma-separated simulation shard counts to sweep; a pure performance\nknob — variants differing only in shards produce identical results")
		baseOps     = fs.Float64("base", 2000, "base offered load (ops/s)")
		peakOps     = fs.Float64("peak", 4000, "peak offered load for non-constant patterns (ops/s)")
		nodeOps     = fs.Float64("node-ops", 2000, "per-node sustainable ops/s")
		maxNodes    = fs.Int("max-nodes", 12, "maximum cluster size reachable through scaling")
		parallel    = fs.Int("parallelism", 0, "max concurrently running variants (0 = GOMAXPROCS)")
		recordDir   = fs.String("record-trace", "", "directory to record every variant's arrival stream into\n(one <variant>.trace.jsonl file per variant)")
		replayTrace = fs.String("replay-trace", "", "comma-separated trace files replayed as a grid axis; every variant on a\ntrace faces those exact recorded arrivals instead of generated ones")
		csvPath     = fs.String("csv", "", "write the per-variant results as CSV to this file")
		jsonPath    = fs.String("json", "", "write the full suite report as JSON to this file")
		streamAgg   = fs.Bool("stream-agg", false, "aggregate results one variant at a time, retaining O(parallelism)\nreports instead of the whole grid; exports stream straight to their files")
		spillDir    = fs.String("spill-dir", "", "write each variant's full result to its own JSON file in this\ndirectory as it completes (implies -stream-agg)")
		audit       = fs.Bool("audit", false, "record each variant's MAPE decision audit trail into its report\n(carried by the -json export)")
		traceDir    = fs.String("trace-ops", "", "directory to write each variant's sampled op-trace spans into\n(one <variant>.spans.jsonl file per variant)")
		traceEvery  = fs.Int("trace-every", 1, "with -trace-ops, sample every Nth operation")
		profile     = fs.Bool("profile", false, "record each variant's engine self-profiling counters into its report")
		list        = fs.Bool("list", false, "print the expanded variants and exit without running")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base := autonosql.DefaultScenarioSpec()
	base.Seed = *seed
	base.Duration = *duration
	base.Cluster.NodeOpsPerSec = *nodeOps
	base.Cluster.MaxNodes = *maxNodes
	base.Workload.BaseOpsPerSec = *baseOps
	base.Workload.PeakOpsPerSec = *peakOps
	baseTenants, err := autonosql.ParseTenantSpecs(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
		return 2
	}
	base.Tenants = baseTenants
	admissionSpec, err := autonosql.ParseAdmissionSpec(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
		return 2
	}
	base.Controller.Admission = admissionSpec
	base.Controller.AllowPlacement = *placement
	if *audit || *traceDir != "" || *profile {
		base.Observe = &autonosql.ObserveSpec{
			TraceOps:    *traceDir != "",
			SampleEvery: *traceEvery,
			Audit:       *audit,
			Profile:     *profile,
		}
	}

	grid, err := buildGrid(*patterns, *controllers, *nodes, *slaTiers, *faultAxis, *mixAxis, *shardAxis, *duration, *repeats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
		return 2
	}
	for _, path := range splitList(*replayTrace) {
		trace, err := autonosql.ReadWorkloadTraceFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
			return 2
		}
		grid.Traces = append(grid.Traces, autonosql.NamedTrace{Name: traceName(path), Trace: trace})
	}

	suiteSpec := autonosql.SuiteSpec{
		Base:        base,
		Grid:        grid,
		Parallelism: *parallel,
	}
	// With -record-trace or -trace-ops the grid is expanded here instead of
	// inside NewSuite, so every variant can be given a Configure hook that
	// arms trace recording and keeps the scenario reachable for trace / span
	// extraction after the run.
	var held []*autonosql.Scenario
	if *recordDir != "" || *traceDir != "" {
		expanded := autonosql.ExpandGrid(base, grid)
		held = make([]*autonosql.Scenario, len(expanded))
		record := *recordDir != ""
		for i := range expanded {
			i := i
			expanded[i].Configure = func(s *autonosql.Scenario) error {
				held[i] = s
				if record {
					return s.RecordTrace()
				}
				return nil
			}
		}
		suiteSpec = autonosql.SuiteSpec{Variants: expanded, Parallelism: *parallel}
	}
	suite, err := autonosql.NewSuite(suiteSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
		return 2
	}

	variants := suite.Variants()
	if *list {
		for _, v := range variants {
			fmt.Fprintf(out, "%-60s seed=%d\n", v.Name, v.Spec.Seed)
		}
		return 0
	}

	// Trace and span file names must be collision-free before anything runs:
	// two variant names that sanitize to the same file would silently
	// overwrite each other's output.
	if *recordDir != "" || *traceDir != "" {
		if err := detectTraceCollisions(variants); err != nil {
			fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(out, "autonosql suite: %d variants, %v simulated each\n\n", len(variants), *duration)
	started := time.Now()

	// Two execution paths with identical output bytes: the default holds the
	// whole SuiteReport in memory; -stream-agg folds each result into a
	// SuiteAggregator as it completes, writing the exports incrementally and
	// retaining O(parallelism) reports. Either way a mid-suite failure keeps
	// the completed variants: tables and exports cover the completed prefix
	// and the failure is reported alongside.
	type suiteTables interface {
		ComparisonTable() string
		CostTable() string
		FaultsTable() string
		TenantsTable() string
	}
	var (
		tables    suiteTables
		cheapest  *autonosql.VariantResult
		failures  []error
		completed int
		runErr    error
	)
	if *streamAgg || *spillDir != "" {
		opts := autonosql.SuiteAggregatorOptions{SpillDir: *spillDir}
		var files []*os.File
		open := func(path string) *os.File {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
				return nil
			}
			files = append(files, f)
			return f
		}
		if *csvPath != "" {
			if opts.CSV = open(*csvPath); opts.CSV == nil {
				return 1
			}
		}
		if *jsonPath != "" {
			if opts.JSON = open(*jsonPath); opts.JSON == nil {
				return 1
			}
		}
		if *tenantsCSV != "" {
			if opts.TenantsCSV = open(*tenantsCSV); opts.TenantsCSV == nil {
				return 1
			}
		}
		agg := autonosql.NewSuiteAggregator(opts)
		_, runErr = suite.RunStream(agg.Consume())
		if err := agg.Close(); err != nil && runErr == nil {
			runErr = err
		}
		for _, f := range files {
			if err := f.Close(); err != nil && runErr == nil {
				runErr = err
			}
		}
		tables = agg
		cheapest = agg.CheapestCompliant()
		failures = agg.Failures()
		completed = agg.Added() - len(failures)
	} else {
		var report *autonosql.SuiteReport
		report, runErr = suite.Run()
		tables = report
		cheapest = report.CheapestCompliant(0)
		for _, v := range report.Variants {
			if v.Err != nil {
				failures = append(failures, v.Err)
			}
		}
		completed = report.Len() - len(failures)
	}

	fmt.Fprint(out, tables.ComparisonTable())
	fmt.Fprintln(out)
	fmt.Fprint(out, tables.CostTable())
	if ft := tables.FaultsTable(); ft != "" {
		fmt.Fprintln(out)
		fmt.Fprint(out, ft)
	}
	if tt := tables.TenantsTable(); tt != "" {
		fmt.Fprintln(out)
		fmt.Fprint(out, tt)
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(started).Round(time.Millisecond))

	if *recordDir != "" && runErr == nil {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
			return 1
		}
		for i, v := range variants {
			trace, err := held[i].RecordedTrace()
			if err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: variant %q: %v\n", v.Name, err)
				return 1
			}
			path := filepath.Join(*recordDir, traceFileName(v.Name))
			if err := trace.WriteFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
				return 1
			}
		}
		fmt.Fprintf(out, "recorded %d variant traces to %s\n", len(variants), *recordDir)
	}
	if *traceDir != "" && runErr == nil {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
			return 1
		}
		for i, v := range variants {
			path := filepath.Join(*traceDir, spanFileName(v.Name))
			if err := writeFile(path, held[i].WriteSpans); err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: variant %q: %v\n", v.Name, err)
				return 1
			}
		}
		fmt.Fprintf(out, "wrote %d variant span files to %s\n", len(variants), *traceDir)
	}

	if cheapest != nil {
		fmt.Fprintf(out, "cheapest fully compliant variant: %s ($%.2f)\n", cheapest.Name, cheapest.Report.Cost.Total)
	}

	if !*streamAgg && *spillDir == "" {
		report := tables.(*autonosql.SuiteReport)
		if *csvPath != "" {
			if err := writeFile(*csvPath, report.WriteCSV); err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "wrote CSV results to %s\n", *csvPath)
		}
		if *jsonPath != "" {
			if err := writeFile(*jsonPath, report.WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "wrote JSON report to %s\n", *jsonPath)
		}
		if *tenantsCSV != "" {
			if err := writeFile(*tenantsCSV, report.WriteTenantsCSV); err != nil {
				fmt.Fprintf(os.Stderr, "suiterunner: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "wrote per-tenant CSV results to %s\n", *tenantsCSV)
		}
	} else {
		if *csvPath != "" {
			fmt.Fprintf(out, "wrote CSV results to %s\n", *csvPath)
		}
		if *jsonPath != "" {
			fmt.Fprintf(out, "wrote JSON report to %s\n", *jsonPath)
		}
		if *tenantsCSV != "" {
			fmt.Fprintf(out, "wrote per-tenant CSV results to %s\n", *tenantsCSV)
		}
		if *spillDir != "" {
			fmt.Fprintf(out, "spilled per-variant results to %s\n", *spillDir)
		}
	}

	if runErr != nil {
		for _, e := range failures {
			fmt.Fprintf(os.Stderr, "suiterunner: %v\n", e)
		}
		fmt.Fprintf(os.Stderr, "suiterunner: %v (results above cover the %d completed variants)\n",
			runErr, completed)
		return 1
	}
	return 0
}

// buildGrid parses the axis flags into a Grid.
func buildGrid(patterns, controllers, nodes, slaTiers, faults, tenantMixes, shards string, duration time.Duration, repeats int) (autonosql.Grid, error) {
	var grid autonosql.Grid
	for _, p := range splitList(patterns) {
		grid.Patterns = append(grid.Patterns, autonosql.LoadPattern(p))
	}
	for _, c := range splitList(controllers) {
		grid.Controllers = append(grid.Controllers, autonosql.ControllerMode(c))
	}
	for _, n := range splitList(nodes) {
		size, err := strconv.Atoi(n)
		if err != nil || size <= 0 {
			return autonosql.Grid{}, fmt.Errorf("invalid cluster size %q", n)
		}
		grid.ClusterSizes = append(grid.ClusterSizes, size)
	}
	for _, name := range splitList(slaTiers) {
		tier, ok := autonosql.LookupSLATier(name)
		if !ok {
			return autonosql.Grid{}, fmt.Errorf("unknown SLA tier %q (available: tight, default, loose)", name)
		}
		grid.SLATiers = append(grid.SLATiers, tier)
	}
	for _, name := range splitList(faults) {
		profile, ok := autonosql.LookupFaultProfile(name, duration)
		if !ok {
			return autonosql.Grid{}, fmt.Errorf("unknown fault profile %q (available: none, crash, partition, slow, storm)", name)
		}
		grid.Faults = append(grid.Faults, profile)
	}
	for _, name := range splitList(tenantMixes) {
		mix, ok := autonosql.LookupTenantMix(name)
		if !ok {
			return autonosql.Grid{}, fmt.Errorf("unknown tenant mix %q (available: none, gold-bronze, three-tier)", name)
		}
		grid.TenantMixes = append(grid.TenantMixes, mix)
	}
	for _, s := range splitList(shards) {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return autonosql.Grid{}, fmt.Errorf("invalid shard count %q", s)
		}
		grid.Shards = append(grid.Shards, n)
	}
	grid.Repeats = repeats
	return grid, nil
}

// traceName derives the grid-axis name of a replayed trace from its file
// name, dropping the .jsonl / .trace.jsonl suffixes.
func traceName(path string) string {
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, ".jsonl")
	name = strings.TrimSuffix(name, ".trace")
	return name
}

// detectTraceCollisions errors when two variant names sanitize to the same
// trace file name, so -record-trace refuses to run rather than silently
// overwriting one variant's trace with another's.
func detectTraceCollisions(variants []autonosql.Variant) error {
	byFile := make(map[string]string, len(variants))
	for _, v := range variants {
		name := traceFileName(v.Name)
		if prev, dup := byFile[name]; dup {
			return fmt.Errorf("variants %q and %q both record to %s; rename the variants or shrink the grid",
				prev, v.Name, name)
		}
		byFile[name] = v.Name
	}
	return nil
}

// traceFileName maps a variant name (which contains spaces and '=') onto a
// filesystem-safe trace file name.
func traceFileName(variant string) string {
	return safeFileName(variant) + ".trace.jsonl"
}

// spanFileName is traceFileName's sibling for -trace-ops span exports.
func spanFileName(variant string) string {
	return safeFileName(variant) + ".spans.jsonl"
}

func safeFileName(variant string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, variant)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
