// Command autoscale runs an end-to-end auto-scaling scenario: a time-varying
// workload against a simulated eventually-consistent cluster managed by a
// chosen controller (none, the reactive CPU autoscaler, or the paper's smart
// SLA-driven controller), and prints the SLA/cost report, the controller's
// decision log and the cluster-size and window timelines.
//
// Usage example:
//
//	autoscale -controller smart -pattern diurnal -base 1000 -peak 3000 -duration 20m -decisions
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autonosql"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("autoscale", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "random seed")
		duration   = fs.Duration("duration", 20*time.Minute, "simulated duration")
		controller = fs.String("controller", "smart", "controller: none, reactive, smart")
		pattern    = fs.String("pattern", "diurnal", "load pattern: constant, step, diurnal, spike, diurnal+spike")
		base       = fs.Float64("base", 1000, "base offered load (ops/s)")
		peak       = fs.Float64("peak", 3000, "peak offered load (ops/s)")
		nodes      = fs.Int("nodes", 3, "initial cluster size")
		maxNodes   = fs.Int("max-nodes", 12, "maximum cluster size")
		nodeOps    = fs.Float64("node-ops", 2000, "per-node sustainable ops/s")
		windowSLA  = fs.Duration("sla-window", 150*time.Millisecond, "SLA bound on the p95 inconsistency window")
		noisy      = fs.Bool("noisy-neighbour", false, "enable multi-tenant background load")
		tenants    = fs.String("tenants", "", "named tenants, comma-separated class:pattern:base[:peak=P][:read=F][:keys=K][:name=N]\n(e.g. \"gold:diurnal:2000,bronze:constant:500\"); replaces -base/-peak/-pattern traffic")
		admission  = fs.String("admission", "", "tenant admission control for the smart controller:\noff | on[:frac=F][:floor=R][:cooldown=D][:hold=D]")
		placement  = fs.Bool("placement", false, "allow the smart controller to dedicate nodes to an SLA class")
		predictive = fs.Bool("predictive", true, "enable predictive scaling (smart controller)")
		decisions  = fs.Bool("decisions", false, "print the controller decision log")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = *seed
	spec.Duration = *duration
	spec.Cluster.InitialNodes = *nodes
	spec.Cluster.MaxNodes = *maxNodes
	spec.Cluster.NodeOpsPerSec = *nodeOps
	spec.Cluster.NoisyNeighbour = *noisy
	spec.Workload.Pattern = autonosql.LoadPattern(*pattern)
	spec.Workload.BaseOpsPerSec = *base
	spec.Workload.PeakOpsPerSec = *peak
	spec.SLA.MaxWindowP95 = *windowSLA
	spec.Controller.Mode = autonosql.ControllerMode(*controller)
	spec.Controller.Predictive = *predictive
	tenantSpecs, err := autonosql.ParseTenantSpecs(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		return 2
	}
	spec.Tenants = tenantSpecs
	admissionSpec, err := autonosql.ParseAdmissionSpec(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		return 2
	}
	spec.Controller.Admission = admissionSpec
	spec.Controller.AllowPlacement = *placement

	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		return 2
	}
	report, err := scenario.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "autoscale: %v\n", err)
		return 1
	}

	fmt.Print(report)
	if *decisions && len(report.Decisions) > 0 {
		fmt.Println("\ncontroller decisions:")
		for _, d := range report.Decisions {
			fmt.Println(" ", d)
		}
	}
	fmt.Println()
	fmt.Print(report.PlotSeries(autonosql.SeriesOfferedLoad, 50))
	fmt.Println()
	fmt.Print(report.PlotSeries(autonosql.SeriesClusterSize, 50))
	fmt.Println()
	fmt.Print(report.PlotSeries(autonosql.SeriesWindowP95, 50))
	return 0
}
