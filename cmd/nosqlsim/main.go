// Command nosqlsim runs a single simulated eventually-consistent cluster
// scenario and prints the resulting report: ground-truth inconsistency-window
// percentiles, client latency, SLA compliance, cost and (optionally) ASCII
// timelines of the recorded series.
//
// Usage example:
//
//	nosqlsim -nodes 3 -rf 3 -write-cl ONE -ops 3000 -duration 5m -controller none -plot window_p95_ms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"autonosql"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// writeTo streams one export into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(args []string, out *os.File) int {
	fs := flag.NewFlagSet("nosqlsim", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 1, "random seed")
		duration   = fs.Duration("duration", 5*time.Minute, "simulated duration")
		nodes      = fs.Int("nodes", 3, "initial cluster size")
		nodeOps    = fs.Float64("node-ops", 5000, "per-node sustainable ops/s")
		rf         = fs.Int("rf", 3, "replication factor")
		readCL     = fs.String("read-cl", "ONE", "read consistency level (ONE, TWO, QUORUM, ALL)")
		writeCL    = fs.String("write-cl", "ONE", "write consistency level (ONE, TWO, QUORUM, ALL)")
		ops        = fs.Float64("ops", 3000, "offered load in ops/s (base rate)")
		peak       = fs.Float64("peak", 0, "peak ops/s for step/diurnal/spike patterns")
		pattern    = fs.String("pattern", "constant", "load pattern: constant, step, diurnal, spike, diurnal+spike")
		readFrac   = fs.Float64("read-fraction", 0.5, "fraction of operations that are reads")
		keys       = fs.Int("keys", 10000, "keyspace size")
		noisy      = fs.Bool("noisy-neighbour", false, "enable multi-tenant background load")
		controller = fs.String("controller", "none", "controller: none, reactive, smart")
		windowSLA  = fs.Duration("sla-window", 250*time.Millisecond, "SLA bound on the p95 inconsistency window")
		probes     = fs.Float64("probe-rate", 1, "active read-after-write probes per second (0 disables)")
		faults     = fs.String("faults", "", "fault plan, comma-separated kind:start:duration[:n=N][:sev=S] events\n(kinds: crash, slow, partition, storm; e.g. \"crash:1m:30s,storm:2m:30s:sev=0.8\")")
		tenants    = fs.String("tenants", "", "multi-tenant workload, comma-separated class:pattern:base[:peak=P][:read=F][:keys=K][:name=N]\n(classes: gold, silver, bronze; e.g. \"gold:diurnal:2000,bronze:constant:500\"); replaces -ops/-pattern traffic")
		admission  = fs.String("admission", "", "tenant admission control for the smart controller:\noff | on[:frac=F][:floor=R][:cooldown=D][:hold=D] (e.g. \"on:frac=0.4:floor=100\")")
		placement  = fs.Bool("placement", false, "allow the smart controller to dedicate nodes to an SLA class")
		plot       = fs.String("plot", "", "comma-separated report series to plot (e.g. window_p95_ms,cluster_size)")
		decisions  = fs.Bool("decisions", false, "print the controller decision log")
		recordPath = fs.String("record-trace", "", "record the run's arrival stream to the given JSON-lines trace file")
		replayPath = fs.String("replay-trace", "", "replay arrivals from the given trace file instead of generating them\n(the trace's tenants must match -tenants)")
		shards     = fs.Int("shards", 1, "simulation shards: >= 2 runs the workload drivers on their own\nlockstep lanes across cores; results are identical for any value")
		epoch      = fs.Duration("epoch", 0, "lockstep epoch for -shards >= 2 (0 = default); results are invariant")
		scaleTrace = fs.Float64("scale-trace", 1, "multiply every replayed arrival time by this factor (with -replay-trace;\n1.0 replays the trace bit-for-bit)")
		traceOps   = fs.String("trace-ops", "", "write sampled op-trace spans (JSON lines) to the given file")
		traceEvery = fs.Int("trace-every", 1, "with -trace-ops, sample every Nth operation")
		chromePath = fs.String("trace-chrome", "", "write the sampled spans as a Chrome trace_event file\n(load in chrome://tracing or Perfetto)")
		audit      = fs.Bool("audit", false, "print the MAPE decision audit trail (smart controller)")
		profile    = fs.Bool("profile", false, "print the engine's self-profiling counters")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := autonosql.DefaultScenarioSpec()
	spec.Seed = *seed
	spec.Duration = *duration
	spec.Cluster.InitialNodes = *nodes
	spec.Cluster.NodeOpsPerSec = *nodeOps
	spec.Cluster.NoisyNeighbour = *noisy
	spec.Store.ReplicationFactor = *rf
	spec.Store.ReadConsistency = autonosql.ConsistencyLevel(strings.ToUpper(*readCL))
	spec.Store.WriteConsistency = autonosql.ConsistencyLevel(strings.ToUpper(*writeCL))
	spec.Workload.Pattern = autonosql.LoadPattern(*pattern)
	spec.Workload.BaseOpsPerSec = *ops
	spec.Workload.PeakOpsPerSec = *peak
	spec.Workload.ReadFraction = *readFrac
	spec.Workload.Keyspace = *keys
	spec.Monitor.ActiveProbes = *probes > 0
	spec.Monitor.ProbeRate = *probes
	spec.SLA.MaxWindowP95 = *windowSLA
	spec.Controller.Mode = autonosql.ControllerMode(*controller)
	plan, err := autonosql.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
		return 2
	}
	spec.Faults = plan
	tenantSpecs, err := autonosql.ParseTenantSpecs(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
		return 2
	}
	spec.Tenants = tenantSpecs
	admissionSpec, err := autonosql.ParseAdmissionSpec(*admission)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
		return 2
	}
	spec.Controller.Admission = admissionSpec
	spec.Controller.AllowPlacement = *placement
	spec.Shards = *shards
	spec.Epoch = *epoch
	if *replayPath != "" {
		trace, err := autonosql.ReadWorkloadTraceFile(*replayPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 2
		}
		if *scaleTrace != 1 {
			trace, err = trace.Scale(*scaleTrace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
				return 2
			}
		}
		spec.Replay = trace
	} else if *scaleTrace != 1 {
		fmt.Fprintln(os.Stderr, "nosqlsim: -scale-trace needs -replay-trace")
		return 2
	}
	if *traceOps != "" || *chromePath != "" || *audit || *profile {
		spec.Observe = &autonosql.ObserveSpec{
			TraceOps:    *traceOps != "" || *chromePath != "",
			SampleEvery: *traceEvery,
			Audit:       *audit,
			Profile:     *profile,
		}
	}

	scenario, err := autonosql.NewScenario(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
		return 2
	}
	if *recordPath != "" {
		if err := scenario.RecordTrace(); err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 2
		}
	}
	report, err := scenario.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
		return 1
	}
	if *recordPath != "" {
		trace, err := scenario.RecordedTrace()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 1
		}
		if err := trace.WriteFile(*recordPath); err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "recorded %d arrivals to %s\n", trace.EventCount(), *recordPath)
	}

	if *traceOps != "" {
		if err := writeTo(*traceOps, scenario.WriteSpans); err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %d op-trace spans to %s\n", report.Spans.Sampled, *traceOps)
	}
	if *chromePath != "" {
		if err := writeTo(*chromePath, scenario.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "nosqlsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(out, "wrote chrome trace to %s\n", *chromePath)
	}

	fmt.Fprint(out, report.String())
	if *audit && len(report.Audit) > 0 {
		fmt.Fprintln(out, "\naudit trail:")
		for _, e := range report.Audit {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	if *decisions && len(report.Decisions) > 0 {
		fmt.Fprintln(out, "\ncontroller decisions:")
		for _, d := range report.Decisions {
			fmt.Fprintf(out, "  %s\n", d)
		}
	}
	if *plot != "" {
		for _, name := range strings.Split(*plot, ",") {
			name = strings.TrimSpace(name)
			if p := report.PlotSeries(name, 50); p != "" {
				fmt.Fprintln(out)
				fmt.Fprint(out, p)
			} else {
				fmt.Fprintf(os.Stderr, "nosqlsim: unknown series %q\n", name)
			}
		}
	}
	return 0
}
